(* crs_serve: canonicalizer oracle tests, the LRU memo cache, protocol
   strictness, fuel deadlines, and an in-tree daemon smoke test over a
   socketpair — so serve regressions fail tier-1. *)

module Q = Crs_num.Rational
open Crs_core
module Canon = Crs_serve.Canon
module Protocol = Crs_serve.Protocol
module Server = Crs_serve.Server
module Loadgen = Crs_serve.Loadgen
module J = Crs_util.Stable_json
module R = Crs_algorithms.Registry

let random_instance ?(m = 3) seed =
  let spec =
    { Crs_generators.Random_gen.default_spec with m; jobs_min = 2; jobs_max = 4 }
  in
  Crs_generators.Random_gen.instance ~spec (Random.State.make [| seed |])

(* ---- canonicalizer ---- *)

let test_canon_idempotent () =
  for seed = 1 to 20 do
    let i = random_instance seed in
    let c = Canon.canonicalize i in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: canonicalize idempotent" seed)
      true
      (Instance.equal c (Canon.canonicalize c))
  done

(* Satellite: Canon.key is invariant under exactly the mutations the
   fuzz oracles prove neutral — processor permutation and
   zero-requirement padding (reusing the crs_fuzz helper). *)
let test_canon_key_invariance () =
  for seed = 1 to 40 do
    let i = random_instance seed in
    let m = Instance.m i in
    let reversed = Instance.sub_processors i (List.init m (fun k -> m - 1 - k)) in
    let rotated = Instance.sub_processors i (List.init m (fun k -> (k + 1) mod m)) in
    let padded = Crs_fuzz.Oracle.zero_pad_instance i in
    let padded_reversed = Crs_fuzz.Oracle.zero_pad_instance reversed in
    let key = Canon.key i in
    Alcotest.(check string)
      (Printf.sprintf "seed %d: key invariant under reversal" seed)
      key (Canon.key reversed);
    Alcotest.(check string)
      (Printf.sprintf "seed %d: key invariant under rotation" seed)
      key (Canon.key rotated);
    Alcotest.(check string)
      (Printf.sprintf "seed %d: key invariant under zero-padding" seed)
      key (Canon.key padded);
    Alcotest.(check string)
      (Printf.sprintf "seed %d: key invariant under pad+permute" seed)
      key (Canon.key padded_reversed);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: equivalent agrees" seed)
      true
      (Canon.equivalent i padded_reversed)
  done

let test_canon_distinguishes () =
  let a = random_instance 1 and b = random_instance 2 in
  Alcotest.(check bool) "different instances, different keys" false
    (Canon.equivalent a b)

let test_canon_padding_only_instance () =
  (* An all-padding instance must keep its rows (makespan 1 ≠ empty). *)
  let padding = Instance.create [| [| Job.unit Q.zero |] |] in
  let c = Canon.canonicalize padding in
  Alcotest.(check int) "padding-only instance keeps its row" 1
    (Instance.total_jobs c)

(* ---- LRU cache ---- *)

let test_cache_lru () =
  let c = Canon.Cache.create ~capacity:2 in
  Canon.Cache.add c "a" 1;
  Canon.Cache.add c "b" 2;
  Alcotest.(check (option int)) "a cached" (Some 1) (Canon.Cache.find c "a");
  (* "b" is now least-recently used; inserting "c" evicts it. *)
  Canon.Cache.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Canon.Cache.find c "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Canon.Cache.find c "a");
  Alcotest.(check (option int)) "c cached" (Some 3) (Canon.Cache.find c "c");
  Alcotest.(check int) "size" 2 (Canon.Cache.size c);
  Alcotest.(check int) "hits" 3 (Canon.Cache.hits c);
  Alcotest.(check int) "misses" 1 (Canon.Cache.misses c);
  Alcotest.(check int) "evictions" 1 (Canon.Cache.evictions c)

let test_cache_disabled () =
  let c = Canon.Cache.create ~capacity:0 in
  Canon.Cache.add c "a" 1;
  Alcotest.(check (option int)) "capacity 0 never stores" None
    (Canon.Cache.find c "a");
  Alcotest.(check int) "size stays 0" 0 (Canon.Cache.size c)

(* ---- protocol ---- *)

let parse_ok line =
  match (Protocol.parse line).body with
  | Ok req -> req
  | Error msg -> Alcotest.failf "expected Ok, got: %s" msg

let parse_err line =
  match (Protocol.parse line).body with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error msg -> msg

let test_protocol_solve_defaults () =
  match
    parse_ok {|{"proto":"crs-serve/1","kind":"solve","instance":"1/2\n1/3"}|}
  with
  | Protocol.Solve s ->
    Alcotest.(check string) "default algorithm" R.Names.greedy_balance
      s.algorithm;
    Alcotest.(check bool) "witness off" false s.witness;
    Alcotest.(check bool) "cache on" true s.cache;
    Alcotest.(check int) "instance parsed" 2 (Instance.m s.instance)
  | _ -> Alcotest.fail "expected Solve"

let test_protocol_strictness () =
  let msg = parse_err {|{"proto":"crs-serve/0","kind":"hello"}|} in
  Alcotest.(check bool) "proto mismatch names the version" true
    (Helpers.contains ~needle:"crs-serve/1" msg);
  let msg = parse_err {|{"proto":"crs-serve/1","kind":"frobnicate"}|} in
  Alcotest.(check bool) "unknown kind named" true
    (Helpers.contains ~needle:"frobnicate" msg);
  let msg = parse_err {|{"proto":"crs-serve/1","kind":"solve"}|} in
  Alcotest.(check bool) "missing instance named" true
    (Helpers.contains ~needle:"instance" msg);
  let msg = parse_err {|{"kind":"hello"}|} in
  Alcotest.(check bool) "missing proto named" true
    (Helpers.contains ~needle:"proto" msg);
  (* The id survives body-level rejection, so the error is correlatable. *)
  let p = Protocol.parse {|{"proto":"crs-serve/1","id":42,"kind":"nope"}|} in
  Alcotest.(check (option int)) "id recovered from bad body" (Some 42) p.id;
  let msg = parse_err {|{"proto":"crs-serve/1","kind":"hello"} trailing|} in
  Alcotest.(check bool) "trailing garbage carries offset" true
    (Helpers.contains ~needle:"offset" msg)

let test_protocol_campaign_cap () =
  let msg =
    parse_err
      {|{"proto":"crs-serve/1","kind":"campaign","seed_lo":1,"seed_hi":100000,"algorithms":["greedy-balance"]}|}
  in
  Alcotest.(check bool) "oversized campaign rejected with cap" true
    (Helpers.contains ~needle:"cap" msg)

(* ---- server batches (deterministic, no sockets) ---- *)

let with_server config f =
  let server = Server.create config in
  Fun.protect ~finally:(fun () -> Server.drain server) (fun () -> f server)

let small_config =
  {
    Server.default_config with
    Server.workers = 1;
    queue = 8;
    cache_capacity = 16;
    default_fuel = None;
  }

let solve_line ?(extra = []) instance =
  J.obj
    ([
       ("proto", J.str Protocol.version);
       ("kind", J.str "solve");
       ("instance", J.str (Instance.to_string instance));
     ]
    @ extra)

let response_status line =
  match J.parse line with
  | Ok json -> (
    match J.member "status" json with
    | Some (J.Str s) -> s
    | _ -> Alcotest.failf "response without status: %s" line)
  | Error msg -> Alcotest.failf "unparseable response %s: %s" line msg

let test_server_byte_identical_responses () =
  with_server small_config (fun server ->
      let base = random_instance 5 in
      let m = Instance.m base in
      let permuted =
        Instance.sub_processors base (List.init m (fun k -> m - 1 - k))
      in
      let padded = Crs_fuzz.Oracle.zero_pad_instance base in
      let r_base = Server.handle_line server (solve_line base) in
      let r_perm = Server.handle_line server (solve_line permuted) in
      let r_pad = Server.handle_line server (solve_line padded) in
      Alcotest.(check string) "permuted response byte-identical" r_base r_perm;
      Alcotest.(check string) "padded response byte-identical" r_base r_pad;
      (* And again with the cache off: identical because the answer is
         computed on the canonical form, not because it was memoized. *)
      let nocache i = solve_line ~extra:[ ("cache", J.bool false) ] i in
      let r1 = Server.handle_line server (nocache base) in
      let r2 = Server.handle_line server (nocache permuted) in
      Alcotest.(check string) "uncached responses byte-identical" r1 r2)

let test_server_overload_sheds_batch_tail () =
  with_server
    { small_config with Server.queue = 2; cache_capacity = 0 }
    (fun server ->
      let lines =
        List.init 5 (fun i -> solve_line (random_instance (10 + i)))
      in
      let responses = Server.process_batch server lines in
      Alcotest.(check int) "every request answered" 5 (List.length responses);
      let statuses = List.map response_status responses in
      let count s = List.length (List.filter (String.equal s) statuses) in
      Alcotest.(check int) "queue-many solved" 2 (count "ok");
      Alcotest.(check int) "rest shed as overloaded" 3 (count "overloaded");
      (* Admission is per batch, not cumulative: the next batch solves. *)
      let next = Server.process_batch server [ solve_line (random_instance 1) ] in
      Alcotest.(check (list string)) "next batch admitted" [ "ok" ]
        (List.map response_status next))

(* Satellite: a tiny fuel budget on a brute-force solve must come back
   as a structured timeout, with the span recording fuel_ticks at the
   limit — never as an exception or a dropped response. *)
let test_server_fuel_timeout () =
  with_server small_config (fun server ->
      let budget = 3 in
      (* Figure 1's instance costs brute-force 13 ticks unpruned, so a
         3-tick budget deterministically trips Out_of_fuel mid-search. *)
      let line =
        solve_line
          ~extra:
            [ ("algorithm", J.str R.Names.brute_force); ("fuel", J.int budget) ]
          Crs_generators.Adversarial.figure1
      in
      Crs_obs.Trace.reset ();
      Crs_obs.Trace.set_enabled true;
      let response = Server.handle_line server line in
      Crs_obs.Trace.set_enabled false;
      Alcotest.(check string) "structured timeout" "timeout"
        (response_status response);
      (match J.parse response with
      | Ok json ->
        (match J.member "fuel_ticks" json with
        | Some (J.Int ticks) ->
          Alcotest.(check bool)
            (Printf.sprintf "fuel_ticks %d at the limit (budget %d)" ticks
               budget)
            true
            (ticks >= budget && ticks <= budget + 1)
        | _ -> Alcotest.fail "timeout response lacks fuel_ticks");
        (match J.member "fuel" json with
        | Some (J.Int f) -> Alcotest.(check int) "echoes the budget" budget f
        | _ -> Alcotest.fail "timeout response lacks fuel")
      | Error msg -> Alcotest.failf "unparseable timeout response: %s" msg);
      let signature = Crs_obs.Trace.signature () in
      Alcotest.(check bool) "serve.request span recorded" true
        (Helpers.contains ~needle:"serve.request" signature);
      Alcotest.(check bool) "span carries fuel_ticks" true
        (Helpers.contains ~needle:"fuel_ticks" signature);
      Alcotest.(check bool) "span carries timeout status" true
        (Helpers.contains ~needle:"timeout" signature))

(* The flat Opt_two kernel charges fuel per REACHED cell (the tick sits
   after the reachability check), so a solve's exact fuel price is its
   cells_expanded counter: that budget succeeds, one tick fewer is a
   deterministic timeout. The instance keeps the start remainder <= 1,
   so the DP walks the diagonal and most grid cells stay unreachable —
   exactly the cells the hoisted tick stopped charging for. *)
let test_server_fuel_opt_two_pinned () =
  with_server small_config (fun server ->
      let instance =
        Helpers.instance_of_strings [ [ "1/4"; "1/2" ]; [ "1/4"; "1/2" ] ]
      in
      let price =
        (Crs_algorithms.Opt_two.solve instance).counters.cells_expanded
      in
      Alcotest.(check int) "diagonal instance reaches 2 of 8 grid cells" 2 price;
      let status fuel =
        response_status
          (Server.handle_line server
             (solve_line
                ~extra:
                  [ ("algorithm", J.str R.Names.opt_two); ("fuel", J.int fuel) ]
                instance))
      in
      Alcotest.(check string) "one tick under the price times out" "timeout"
        (status (price - 1));
      Alcotest.(check string) "budget = reachable cells solves" "ok"
        (status price))

let test_server_cache_hits () =
  with_server small_config (fun server ->
      let i = random_instance 8 in
      let r1 = Server.handle_line server (solve_line i) in
      let r2 = Server.handle_line server (solve_line i) in
      Alcotest.(check string) "hit answers identically" r1 r2;
      let payload = J.obj (Server.stats_payload server) in
      match J.parse payload with
      | Ok json ->
        let cache_field f =
          match Option.bind (J.member "cache" json) (J.member f) with
          | Some (J.Int v) -> v
          | _ -> Alcotest.failf "stats lack cache.%s" f
        in
        Alcotest.(check int) "one miss" 1 (cache_field "misses");
        Alcotest.(check int) "one hit" 1 (cache_field "hits")
      | Error msg -> Alcotest.failf "stats payload unparseable: %s" msg)

(* Satellite: the crs-serve/1 stats response gained additive executor
   fields (queue depths, steals, parks, workers) so operators can see
   saturation. Everything that existed before must still be there. *)
let test_server_stats_exec_fields () =
  with_server
    { small_config with Server.workers = 2 }
    (fun server ->
      ignore (Server.handle_line server (solve_line (random_instance 3)));
      ignore (Server.handle_line server (solve_line (random_instance 4)));
      let payload = J.obj (Server.stats_payload server) in
      match J.parse payload with
      | Error msg -> Alcotest.failf "stats payload unparseable: %s" msg
      | Ok json ->
        let exec =
          match J.member "exec" json with
          | Some e -> e
          | None -> Alcotest.fail "stats lack the exec object"
        in
        let field f =
          match J.member f exec with
          | Some (J.Int v) -> v
          | _ -> Alcotest.failf "stats lack exec.%s" f
        in
        Alcotest.(check int) "exec.workers" 2 (field "workers");
        Alcotest.(check int) "exec.queued drained between batches" 0
          (field "queued");
        Alcotest.(check int) "exec.injected drained" 0 (field "injected");
        Alcotest.(check bool) "exec.pushes counts the solves" true
          (field "pushes" >= 2);
        Alcotest.(check bool) "exec.steals non-negative" true
          (field "steals" >= 0);
        Alcotest.(check bool) "exec.parks non-negative" true (field "parks" >= 0);
        (match J.member "depths" exec with
        | Some (J.List depths) ->
          Alcotest.(check int) "one depth slot per worker" 2 (List.length depths)
        | _ -> Alcotest.fail "stats lack exec.depths");
        (* Additive only: the pre-executor fields are untouched. *)
        List.iter
          (fun k ->
            Alcotest.(check bool) (k ^ " still present") true
              (J.member k json <> None))
          [ "requests"; "ok"; "errors"; "timeouts"; "overloaded"; "cache";
            "workers"; "queue" ])

(* ---- daemon smoke test over a socketpair (CI satellite) ---- *)

let test_daemon_socketpair_smoke () =
  let server_fd, client_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let server = Server.create { small_config with Server.workers = 2 } in
  let daemon =
    Domain.spawn (fun () ->
        Server.serve_io server ~input:server_fd ~output:server_fd;
        Server.drain server)
  in
  let client = Loadgen.Client.of_fd client_fd in
  let rpc = Loadgen.Client.rpc client in
  (* hello: the handshake names the protocol and the algorithms. *)
  let hello = rpc (J.obj [ ("proto", J.str Protocol.version); ("kind", J.str "hello") ]) in
  Alcotest.(check string) "hello ok" "ok" (response_status hello);
  Alcotest.(check bool) "hello lists algorithms" true
    (Helpers.contains ~needle:R.Names.optimal hello);
  (* solve round-trip with a correlation id. *)
  let solve =
    rpc
      (J.obj
         [
           ("proto", J.str Protocol.version);
           ("id", J.int 99);
           ("kind", J.str "solve");
           ("instance", J.str "1/2 1/2\n1/2");
           ("algorithm", J.str R.Names.optimal);
         ])
  in
  Alcotest.(check string) "solve ok" "ok" (response_status solve);
  Alcotest.(check bool) "id echoed" true
    (Helpers.contains ~needle:{|"id":99|} solve);
  Alcotest.(check bool) "makespan present" true
    (Helpers.contains ~needle:{|"makespan":2|} solve);
  (* campaign round-trip. *)
  let campaign =
    rpc
      (J.obj
         [
           ("proto", J.str Protocol.version);
           ("kind", J.str "campaign");
           ("m", J.int 2);
           ("n", J.int 2);
           ("granularity", J.int 5);
           ("seed_lo", J.int 1);
           ("seed_hi", J.int 2);
           ("algorithms", J.arr [ J.str R.Names.greedy_balance ]);
           ("baseline", J.str "lower-bound");
         ])
  in
  Alcotest.(check string) "campaign ok" "ok" (response_status campaign);
  Alcotest.(check bool) "campaign reports items" true
    (Helpers.contains ~needle:{|"items":2|} campaign);
  (* malformed line: answered, not dropped, with a byte offset. *)
  let malformed = rpc "{\"proto\":\"crs-serve/1\"," in
  Alcotest.(check string) "malformed answered with error" "error"
    (response_status malformed);
  Alcotest.(check bool) "error carries offset" true
    (Helpers.contains ~needle:"offset" malformed);
  (* overload: a single write of many pipelined requests forms one
     batch; the tail beyond the queue bound is shed. *)
  let burst =
    String.concat "\n"
      (List.init 12 (fun i -> solve_line (random_instance (30 + i))))
    ^ "\n"
  in
  Loadgen.Client.send_line client (String.sub burst 0 (String.length burst - 1));
  let burst_statuses =
    List.init 12 (fun _ ->
        match Loadgen.Client.recv_line client with
        | Some l -> response_status l
        | None -> Alcotest.fail "daemon closed during burst")
  in
  Alcotest.(check int) "all burst requests answered" 12
    (List.length burst_statuses);
  Alcotest.(check bool) "no burst request errored" true
    (List.for_all (fun s -> s = "ok" || s = "overloaded") burst_statuses);
  (* graceful shutdown: answered, then the daemon drains and exits. *)
  let bye = rpc (J.obj [ ("proto", J.str Protocol.version); ("kind", J.str "shutdown") ]) in
  Alcotest.(check string) "shutdown ok" "ok" (response_status bye);
  Domain.join daemon;
  Unix.close client_fd;
  Unix.close server_fd

(* ---- the concurrent frontend (socketpair connections) ---- *)

(* Tests drive the concurrent frontend through Server.attach: one
   socketpair per connection, the server end registered exactly as the
   accept loop would, the client end wrapped in a Loadgen.Client. *)

(* Queue sized so the concurrent batteries never trip admission —
   overload shedding has its own dedicated test above. *)
let conn_config =
  {
    Server.default_config with
    Server.workers = 2;
    queue = 64;
    cache_capacity = 32;
    default_fuel = None;
    idle_timeout_s = 0.0;
    drain_grace_s = 0.4;
  }

type conn = {
  client : Loadgen.Client.t;
  client_fd : Unix.file_descr;
  reader : Thread.t option;
}

let open_conn server =
  let server_fd, client_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let reader = Server.attach server server_fd in
  { client = Loadgen.Client.of_fd client_fd; client_fd; reader }

let close_conn c =
  (try Unix.close c.client_fd with Unix.Unix_error _ -> ());
  match c.reader with Some th -> Thread.join th | None -> ()

let raw_send fd s =
  let len = String.length s in
  let rec go off =
    if off < len then go (off + Unix.write_substring fd s off (len - off))
  in
  go 0

let stats_field server path =
  match J.parse (J.obj (Server.stats_payload server)) with
  | Error msg -> Alcotest.failf "stats payload unparseable: %s" msg
  | Ok json -> (
    let rec walk json = function
      | [] -> Some json
      | k :: rest -> Option.bind (J.member k json) (fun j -> walk j rest)
    in
    match walk json path with
    | Some (J.Int v) -> v
    | _ -> Alcotest.failf "stats lack %s" (String.concat "." path))

(* Tentpole: N concurrent connections issuing interleaved solve/stats
   pipelines. Per-connection response order must hold (ids echo back in
   request order), every solve response must be byte-identical to the
   single-connection golden, and cache accounting must sum exactly
   across connections (deterministic because the cache is prewarmed, so
   every concurrent solve is a hit). *)
let test_concurrent_connections_deterministic () =
  with_server conn_config (fun server ->
      let golden_server = Server.create conn_config in
      Fun.protect
        ~finally:(fun () -> Server.drain golden_server)
        (fun () ->
          let instances = Array.init 3 (fun i -> random_instance (40 + i)) in
          (* Prewarm: one miss per distinct instance, counted below. *)
          Array.iter
            (fun i -> ignore (Server.handle_line server (solve_line i)))
            instances;
          let conns = 4 and per = 9 in
          let request c j =
            if j mod 3 = 2 then
              J.obj
                [
                  ("proto", J.str Protocol.version);
                  ("id", J.int ((100 * c) + j));
                  ("kind", J.str "stats");
                ]
            else
              solve_line
                ~extra:[ ("id", J.int ((100 * c) + j)) ]
                instances.(j mod 3)
          in
          let connections = Array.init conns (fun _ -> open_conn server) in
          Array.iter
            (fun c ->
              Alcotest.(check bool) "connection admitted" true (c.reader <> None))
            connections;
          let responses = Array.make_matrix conns per "" in
          let clients =
            Array.mapi
              (fun c conn ->
                Thread.create
                  (fun () ->
                    (* One pipelined write, then read everything back:
                       maximal interleaving across connections. *)
                    let lines =
                      String.concat "\n"
                        (List.init per (fun j -> request c j))
                      ^ "\n"
                    in
                    raw_send conn.client_fd lines;
                    for j = 0 to per - 1 do
                      match Loadgen.Client.recv_line conn.client with
                      | Some r -> responses.(c).(j) <- r
                      | None -> responses.(c).(j) <- "<eof>"
                    done)
                  ())
              connections
          in
          Array.iter Thread.join clients;
          for c = 0 to conns - 1 do
            for j = 0 to per - 1 do
              let r = responses.(c).(j) in
              Alcotest.(check bool)
                (Printf.sprintf "conn %d response %d in request order" c j)
                true
                (Helpers.contains
                   ~needle:(Printf.sprintf {|"id":%d|} ((100 * c) + j))
                   r);
              if j mod 3 = 2 then
                Alcotest.(check string)
                  (Printf.sprintf "conn %d stats %d ok" c j)
                  "ok" (response_status r)
              else
                (* Byte-identity against the single-connection golden:
                   same request line, fresh single-connection server. *)
                Alcotest.(check string)
                  (Printf.sprintf "conn %d solve %d byte-identical" c j)
                  (Server.handle_line golden_server (request c j))
                  r
            done
          done;
          let solves_per_conn = per - (per / 3) in
          Alcotest.(check int) "misses = distinct instances (prewarm)" 3
            (stats_field server [ "cache"; "misses" ]);
          Alcotest.(check int) "hits = every concurrent solve"
            (conns * solves_per_conn)
            (stats_field server [ "cache"; "hits" ]);
          Alcotest.(check int) "accepted counts the readers" conns
            (stats_field server [ "connections"; "accepted" ]);
          Array.iter close_conn connections;
          Alcotest.(check int) "all readers closed" 0
            (stats_field server [ "connections"; "live" ])))

(* Satellite: per-kind latency histograms — counts must match the
   request mix exactly, and the quantile edges must be ordered. *)
let test_latency_histogram_per_kind () =
  with_server conn_config (fun server ->
      let hello =
        J.obj [ ("proto", J.str Protocol.version); ("kind", J.str "hello") ]
      in
      let stats_line =
        J.obj [ ("proto", J.str Protocol.version); ("kind", J.str "stats") ]
      in
      for i = 1 to 5 do
        ignore (Server.handle_line server (solve_line (random_instance i)))
      done;
      ignore (Server.handle_line server hello);
      ignore (Server.handle_line server hello);
      ignore (Server.handle_line server stats_line);
      Alcotest.(check int) "solve latency count" 5
        (stats_field server [ "latency"; "solve"; "count" ]);
      Alcotest.(check int) "stats latency count" 1
        (stats_field server [ "latency"; "stats"; "count" ]);
      Alcotest.(check int) "control latency count (hello x2)" 2
        (stats_field server [ "latency"; "control"; "count" ]);
      Alcotest.(check int) "campaign latency count" 0
        (stats_field server [ "latency"; "campaign"; "count" ]);
      let p50 = stats_field server [ "latency"; "solve"; "p50_us" ] in
      let p99 = stats_field server [ "latency"; "solve"; "p99_us" ] in
      let mx = stats_field server [ "latency"; "solve"; "max_us" ] in
      Alcotest.(check bool) "p50 <= p99" true (p50 <= p99);
      Alcotest.(check bool)
        (Printf.sprintf "p99 edge %d bounds max %d" p99 mx)
        true
        (mx <= p99 || p99 = 0))

(* Satellite: adversarial-client battery. Each hostile connection dies
   alone — with a structured answer — while a well-behaved sibling on
   the same server keeps completing solves. *)
let test_adversarial_slow_loris () =
  with_server
    { conn_config with Server.idle_timeout_s = 0.15 }
    (fun server ->
      let victim = open_conn server in
      let sibling = open_conn server in
      (* Half a frame, then silence. *)
      raw_send victim.client_fd {|{"proto":"crs-serve|};
      let r = Loadgen.Client.rpc sibling.client (solve_line (random_instance 7)) in
      Alcotest.(check string) "sibling solves while loris hangs" "ok"
        (response_status r);
      (match Loadgen.Client.recv_line victim.client with
      | Some r ->
        Alcotest.(check string) "structured eviction" "evicted"
          (response_status r);
        Alcotest.(check bool) "names the deadline" true
          (Helpers.contains ~needle:"deadline" r);
        Alcotest.(check bool) "connection-level response" true
          (Helpers.contains ~needle:{|"req":"connection"|} r)
      | None -> Alcotest.fail "loris got no eviction response");
      Alcotest.(check (option string)) "loris connection closed" None
        (Loadgen.Client.recv_line victim.client);
      let r = Loadgen.Client.rpc sibling.client (solve_line (random_instance 8)) in
      Alcotest.(check string) "sibling survives the eviction" "ok"
        (response_status r);
      Alcotest.(check int) "evicted counted" 1
        (stats_field server [ "connections"; "evicted" ]);
      close_conn victim;
      close_conn sibling)

let test_adversarial_battery () =
  with_server
    { conn_config with Server.max_line_bytes = 256 }
    (fun server ->
      let sibling = open_conn server in
      let solve_ok msg =
        let r =
          Loadgen.Client.rpc sibling.client (solve_line (random_instance 9))
        in
        Alcotest.(check string) msg "ok" (response_status r)
      in
      (* Mid-line EOF: the unterminated fragment is still answered (as a
         parse error), then the connection ends cleanly. *)
      let c = open_conn server in
      raw_send c.client_fd {|{"proto":"crs-serve/1","kind":|};
      Unix.shutdown c.client_fd Unix.SHUTDOWN_SEND;
      (match Loadgen.Client.recv_line c.client with
      | Some r ->
        Alcotest.(check string) "mid-line EOF answered as error" "error"
          (response_status r)
      | None -> Alcotest.fail "mid-line EOF dropped the request");
      Alcotest.(check (option string)) "then EOF" None
        (Loadgen.Client.recv_line c.client);
      solve_ok "sibling unharmed by mid-line EOF";
      close_conn c;
      (* Oversized frame: structured error naming the limit, then the
         poisoned connection is closed — alone. *)
      let c = open_conn server in
      raw_send c.client_fd (String.make 300 'x' ^ "\n");
      (match Loadgen.Client.recv_line c.client with
      | Some r ->
        Alcotest.(check string) "oversized answered as error" "error"
          (response_status r);
        Alcotest.(check bool) "names the limit" true
          (Helpers.contains ~needle:"256" r)
      | None -> Alcotest.fail "oversized frame dropped");
      Alcotest.(check (option string)) "poisoned connection closed" None
        (Loadgen.Client.recv_line c.client);
      solve_ok "sibling unharmed by oversized frame";
      (* Garbage frame: answered with the parser's offset error; the
         same connection keeps serving. *)
      let c = open_conn server in
      raw_send c.client_fd "!!not json!!\n";
      (match Loadgen.Client.recv_line c.client with
      | Some r ->
        Alcotest.(check string) "garbage answered as error" "error"
          (response_status r);
        Alcotest.(check bool) "carries a byte offset" true
          (Helpers.contains ~needle:"offset" r)
      | None -> Alcotest.fail "garbage frame dropped");
      let r = Loadgen.Client.rpc c.client (solve_line (random_instance 10)) in
      Alcotest.(check string) "garbage connection still serves" "ok"
        (response_status r);
      solve_ok "sibling unharmed by garbage";
      close_conn c;
      close_conn sibling)

let test_connection_refusal_beyond_max_conns () =
  with_server
    { conn_config with Server.max_conns = 2 }
    (fun server ->
      let a = open_conn server in
      let b = open_conn server in
      let c = open_conn server in
      Alcotest.(check bool) "first two admitted" true
        (a.reader <> None && b.reader <> None);
      Alcotest.(check bool) "third refused" true (c.reader = None);
      (match Loadgen.Client.recv_line c.client with
      | Some r ->
        Alcotest.(check string) "structured overloaded refusal" "overloaded"
          (response_status r);
        Alcotest.(check bool) "connection-level response" true
          (Helpers.contains ~needle:{|"req":"connection"|} r)
      | None -> Alcotest.fail "refused connection got no response");
      Alcotest.(check (option string)) "refused connection closed" None
        (Loadgen.Client.recv_line c.client);
      Alcotest.(check int) "refused counted" 1
        (stats_field server [ "connections"; "refused" ]);
      (* The admitted connections still serve. *)
      let r = Loadgen.Client.rpc a.client (solve_line (random_instance 11)) in
      Alcotest.(check string) "admitted conn solves" "ok" (response_status r);
      close_conn a;
      close_conn b;
      close_conn c)

(* Satellite: graceful drain under load — in-flight requests travelling
   with the shutdown finish and are answered; a late request on a
   sibling connection gets a structured draining refusal; then every
   connection quiesces to EOF. *)
let test_graceful_drain_under_load () =
  with_server conn_config (fun server ->
      let a = open_conn server in
      let b = open_conn server in
      let line kind id =
        J.obj
          [
            ("proto", J.str Protocol.version);
            ("id", J.int id);
            ("kind", J.str kind);
          ]
      in
      (* One pipelined write: two solves in flight plus the shutdown. *)
      raw_send a.client_fd
        (String.concat "\n"
           [
             solve_line ~extra:[ ("id", J.int 1) ] (random_instance 21);
             solve_line ~extra:[ ("id", J.int 2) ] (random_instance 22);
             line "shutdown" 3;
           ]
        ^ "\n");
      let read_a () =
        match Loadgen.Client.recv_line a.client with
        | Some r -> r
        | None -> Alcotest.fail "connection A closed early"
      in
      let r1 = read_a () and r2 = read_a () and r3 = read_a () in
      Alcotest.(check string) "in-flight solve 1 finished" "ok"
        (response_status r1);
      Alcotest.(check string) "in-flight solve 2 finished" "ok"
        (response_status r2);
      Alcotest.(check string) "shutdown acknowledged" "ok" (response_status r3);
      Alcotest.(check bool) "stopping" true (Server.stopping server);
      (* Late request during the drain window: refused, structurally. *)
      Loadgen.Client.send_line b.client
        (solve_line ~extra:[ ("id", J.int 4) ] (random_instance 23));
      (match Loadgen.Client.recv_line b.client with
      | Some r ->
        Alcotest.(check string) "late request refused" "draining"
          (response_status r);
        Alcotest.(check bool) "refusal echoes the id" true
          (Helpers.contains ~needle:{|"id":4|} r)
      | None -> Alcotest.fail "late request got no refusal");
      (* Both connections quiesce to EOF once the grace window ends. *)
      Alcotest.(check (option string)) "A drained to EOF" None
        (Loadgen.Client.recv_line a.client);
      Alcotest.(check (option string)) "B drained to EOF" None
        (Loadgen.Client.recv_line b.client);
      close_conn a;
      close_conn b;
      Alcotest.(check int) "both connections counted drained" 2
        (stats_field server [ "connections"; "drained" ]))

(* Satellite: loadgen multi-connection mode (deterministic smoke; the
   full-scale version runs under `dune build @stress`). *)
let test_loadgen_multi_conn () =
  with_server conn_config (fun server ->
      let conns = Array.init 2 (fun _ -> open_conn server) in
      let clients = Array.map (fun c -> c.client) conns in
      let requests =
        List.init 12 (fun i -> solve_line (random_instance (60 + (i mod 4))))
      in
      let closed =
        Loadgen.run_multi ~seed:7 clients ~arrival:Loadgen.Closed_loop ~requests
      in
      Alcotest.(check int) "closed-loop: all sent" 12 closed.Loadgen.sent;
      Alcotest.(check int) "closed-loop: all received" 12
        closed.Loadgen.received;
      Alcotest.(check int) "every latency sample kept" 12
        (Array.length closed.Loadgen.latencies_ms);
      let open_loop =
        Loadgen.run_multi ~seed:8 clients
          ~arrival:(Loadgen.Poisson { rate = 500.0 })
          ~requests:(List.init 8 (fun i -> solve_line (random_instance (70 + i))))
      in
      Alcotest.(check int) "open-loop: all received" 8
        open_loop.Loadgen.received;
      Alcotest.(check int) "solve latency histogram saw the load" 20
        (stats_field server [ "latency"; "solve"; "count" ]);
      Array.iter close_conn conns)

(* Satellite: the listen backlog is a config field (surfaced as
   --backlog) and actually reaches listen(2) at both bind sites. *)
let test_backlog_config () =
  Alcotest.(check int) "default backlog raised" 128
    Server.default_config.Server.backlog;
  let path = Filename.temp_file "crs" ".sock" in
  Sys.remove path;
  (match Server.bind_address ~backlog:5 (Server.Unix_sock path) with
  | Ok fd -> Server.close_address (Server.Unix_sock path) fd
  | Error msg -> Alcotest.failf "unix bind with backlog failed: %s" msg);
  match Server.bind_address ~backlog:5 (Server.Tcp ("127.0.0.1", 0)) with
  | Ok fd -> Server.close_address (Server.Tcp ("127.0.0.1", 0)) fd
  | Error msg -> Alcotest.failf "tcp bind with backlog failed: %s" msg

(* ---- address parsing ---- *)

let test_parse_address () =
  (match Server.parse_address "unix:/tmp/x.sock" with
  | Ok (Server.Unix_sock "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix address");
  (match Server.parse_address "tcp:127.0.0.1:4321" with
  | Ok (Server.Tcp ("127.0.0.1", 4321)) -> ()
  | _ -> Alcotest.fail "tcp address");
  let bad s =
    match Server.parse_address s with
    | Error msg -> Alcotest.(check bool) s true (Helpers.contains ~needle:s msg)
    | Ok _ -> Alcotest.failf "accepted %s" s
  in
  bad "bogus";
  bad "tcp:host:notaport";
  bad "unix:"

(* ---- warm (crs-warm/1) ---- *)

module Warm = Crs_serve.Warm

let temp_warm_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "crs-warm-test-%d-%d.jsonl" (Unix.getpid ()) !n)

let test_solve_key_roundtrip () =
  let keys =
    [
      {
        Canon.Solve_key.algorithm = "greedy-balance";
        fuel = None;
        witness = false;
        certify = false;
        canon = "1/2 1/3\n1/4\n";
      };
      {
        Canon.Solve_key.algorithm = "optimal";
        fuel = Some 123;
        witness = true;
        certify = true;
        canon = "1/2\n";
      };
    ]
  in
  List.iter
    (fun k ->
      match Canon.Solve_key.of_string (Canon.Solve_key.to_string k) with
      | Some k' ->
        Alcotest.(check bool) "solve key round-trips" true (k = k')
      | None ->
        Alcotest.failf "solve key failed to parse: %s"
          (Canon.Solve_key.to_string k))
    keys;
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "garbage rejected: %S" s)
        true
        (Option.is_none (Canon.Solve_key.of_string s)))
    [ ""; "gibberish"; "a|b"; "|x|truefalse|1/2\n"; "alg|x|truefalse|" ]

let test_cache_keys_mru_first () =
  with_server small_config (fun server ->
      let a = random_instance 11 and b = random_instance 12 in
      ignore (Server.handle_line server (solve_line a));
      ignore (Server.handle_line server (solve_line b));
      (* Touch [a] again: it must come back as the MRU key. *)
      ignore (Server.handle_line server (solve_line a));
      match Server.cache_keys server with
      | [ ka; kb ] ->
        let canon_of k =
          match Canon.Solve_key.of_string k with
          | Some sk -> sk.Canon.Solve_key.canon
          | None -> Alcotest.failf "cache key unparseable: %s" k
        in
        Alcotest.(check string) "MRU key is the re-touched instance"
          (Canon.key a) (canon_of ka);
        Alcotest.(check string) "LRU key is the other instance" (Canon.key b)
          (canon_of kb)
      | keys -> Alcotest.failf "expected 2 cache keys, got %d"
          (List.length keys))

let test_drain_hook_fires_once () =
  let count = ref 0 in
  let server = Server.create small_config in
  Server.set_on_drain server (fun _ -> incr count);
  ignore (Server.handle_line server (solve_line (random_instance 9)));
  Server.drain server;
  Server.drain server;
  Alcotest.(check int) "hook ran exactly once" 1 !count;
  (* A hook that raises is reported and swallowed, never wedging drain. *)
  let raising = Server.create small_config in
  Server.set_on_drain raising (fun _ -> failwith "boom");
  Server.drain raising;
  Server.drain raising

let test_warm_roundtrip_byte_identity () =
  let path = temp_warm_path () in
  let instances = List.init 4 (fun i -> random_instance (20 + i)) in
  let cold =
    let server = Server.create small_config in
    Server.set_on_drain server (fun s -> ignore (Warm.save s ~path));
    let responses =
      List.map (fun i -> Server.handle_line server (solve_line i)) instances
    in
    Server.drain server;
    responses
  in
  Alcotest.(check bool) "snapshot written on drain" true
    (Sys.file_exists path);
  with_server small_config (fun warmed ->
      (match Warm.load_and_replay warmed ~path with
      | Error msg -> Alcotest.failf "replay failed: %s" msg
      | Ok report ->
        Alcotest.(check int) "all entries replayed" 4
          report.Warm.replayed;
        Alcotest.(check int) "no replay failures" 0 report.Warm.failed);
      Alcotest.(check int) "stats expose warm entries" 4
        (stats_field warmed [ "warm"; "entries" ]);
      Alcotest.(check int) "stats expose warm replays" 4
        (stats_field warmed [ "warm"; "replayed" ]);
      let hits0 = stats_field warmed [ "cache"; "hits" ] in
      let warm_responses =
        List.map (fun i -> Server.handle_line warmed (solve_line i)) instances
      in
      List.iter2
        (fun c w ->
          Alcotest.(check string) "warm response byte-identical to cold" c w)
        cold warm_responses;
      Alcotest.(check int) "every post-replay solve is a cache hit"
        (hits0 + 4)
        (stats_field warmed [ "cache"; "hits" ]));
  Sys.remove path

let test_warm_bad_files () =
  let path = temp_warm_path () in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc "{\"proto\":\"crs-warm/9\",\"entries\":0}\n");
  (match Warm.load path with
  | Error msg ->
    Alcotest.(check bool) "error names the supported protocol" true
      (Helpers.contains ~needle:"crs-warm/1" msg)
  | Ok _ -> Alcotest.fail "wrong warm protocol accepted");
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc
        "{\"proto\":\"crs-warm/1\",\"entries\":1}\n{\"algorithm\":\"\"}\n");
  (match Warm.load path with
  | Error msg ->
    Alcotest.(check bool) "entry error names the entry" true
      (Helpers.contains ~needle:"entry 1" msg)
  | Ok _ -> Alcotest.fail "malformed warm entry accepted");
  Sys.remove path;
  with_server small_config (fun server ->
      match Warm.load_and_replay server ~path with
      | Ok r ->
        Alcotest.(check int) "missing file is a fresh start" 0 r.Warm.entries
      | Error msg -> Alcotest.failf "missing file should not error: %s" msg)

let suite =
  [
    Alcotest.test_case "canon: idempotent" `Quick test_canon_idempotent;
    Alcotest.test_case "canon: key invariant under oracle mutations" `Quick
      test_canon_key_invariance;
    Alcotest.test_case "canon: distinct instances distinguished" `Quick
      test_canon_distinguishes;
    Alcotest.test_case "canon: padding-only instance kept" `Quick
      test_canon_padding_only_instance;
    Alcotest.test_case "cache: LRU eviction and counters" `Quick test_cache_lru;
    Alcotest.test_case "cache: capacity 0 disables" `Quick test_cache_disabled;
    Alcotest.test_case "protocol: solve defaults" `Quick
      test_protocol_solve_defaults;
    Alcotest.test_case "protocol: strict parse errors" `Quick
      test_protocol_strictness;
    Alcotest.test_case "protocol: campaign size cap" `Quick
      test_protocol_campaign_cap;
    Alcotest.test_case "server: canonically equal inputs, identical bytes"
      `Quick test_server_byte_identical_responses;
    Alcotest.test_case "server: overload sheds the batch tail" `Quick
      test_server_overload_sheds_batch_tail;
    Alcotest.test_case "server: fuel deadline is a structured timeout" `Quick
      test_server_fuel_timeout;
    Alcotest.test_case "server: opt_two fuel price pinned to reached cells"
      `Quick test_server_fuel_opt_two_pinned;
    Alcotest.test_case "server: memo cache hits on repeats" `Quick
      test_server_cache_hits;
    Alcotest.test_case "server: stats expose executor saturation" `Quick
      test_server_stats_exec_fields;
    Alcotest.test_case "daemon: socketpair smoke test" `Quick
      test_daemon_socketpair_smoke;
    Alcotest.test_case "conns: concurrent interleave is deterministic" `Quick
      test_concurrent_connections_deterministic;
    Alcotest.test_case "conns: per-kind latency histograms" `Quick
      test_latency_histogram_per_kind;
    Alcotest.test_case "conns: slow-loris evicted, sibling unharmed" `Quick
      test_adversarial_slow_loris;
    Alcotest.test_case "conns: adversarial frames die alone" `Quick
      test_adversarial_battery;
    Alcotest.test_case "conns: refusal beyond max-conns" `Quick
      test_connection_refusal_beyond_max_conns;
    Alcotest.test_case "conns: graceful drain under load" `Quick
      test_graceful_drain_under_load;
    Alcotest.test_case "loadgen: multi-connection smoke" `Quick
      test_loadgen_multi_conn;
    Alcotest.test_case "config: backlog reaches listen(2)" `Quick
      test_backlog_config;
    Alcotest.test_case "address: parse and reject" `Quick test_parse_address;
    Alcotest.test_case "warm: solve keys round-trip" `Quick
      test_solve_key_roundtrip;
    Alcotest.test_case "warm: cache keys come back MRU-first" `Quick
      test_cache_keys_mru_first;
    Alcotest.test_case "warm: drain hook fires exactly once" `Quick
      test_drain_hook_fires_once;
    Alcotest.test_case "warm: snapshot/replay round-trip, identical bytes"
      `Quick test_warm_roundtrip_byte_identity;
    Alcotest.test_case "warm: malformed files rejected with cause" `Quick
      test_warm_bad_files;
  ]
