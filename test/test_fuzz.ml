(* Tests for the differential fuzzing subsystem: the independent
   certifier, the registry certify hook, the metamorphic oracles, the
   greedy shrinker (including the mutation self-test the issue demands),
   the persisted corpus, and the deterministic fuzz driver. *)

module Q = Crs_num.Rational
open Crs_core
module F = Crs_fuzz
module R = Crs_algorithms.Registry
module A = Crs_generators.Adversarial

(* ---------- Certify ---------- *)

let test_certify_accepts_witness () =
  let sol = Crs_algorithms.Opt_config.solve A.figure1 in
  let claimed = sol.Crs_algorithms.Opt_config.makespan in
  match F.Certify.check A.figure1 sol.Crs_algorithms.Opt_config.schedule ~claimed with
  | Error msg -> Alcotest.fail ("figure 1 witness rejected: " ^ msg)
  | Ok v ->
    Alcotest.(check int) "re-derived makespan agrees" claimed v.F.Certify.makespan

let test_certify_rejects_corruption () =
  let inst = Helpers.instance_of_strings [ [ "1/2"; "1/2" ]; [ "1/2" ] ] in
  let sol = Crs_algorithms.Opt_config.solve inst in
  let sched = sol.Crs_algorithms.Opt_config.schedule in
  let claimed = sol.Crs_algorithms.Opt_config.makespan in
  (* Wrong makespan claim. *)
  (match F.Certify.check inst sched ~claimed:(claimed + 1) with
  | Ok _ -> Alcotest.fail "inflated claim certified"
  | Error msg ->
    Alcotest.(check bool) "claim error names both values" true
      (Helpers.contains ~needle:"claimed makespan" msg));
  (* Truncated witness: a job is left unfinished. *)
  let truncated = Schedule.of_rows [| Schedule.row sched 0 |] in
  (match F.Certify.check inst truncated ~claimed:1 with
  | Ok _ -> Alcotest.fail "truncated witness certified"
  | Error msg ->
    Alcotest.(check bool) "names the unfinished job" true
      (Helpers.contains ~needle:"unfinished at horizon" msg));
  (* Infeasible witness: step total above 1. *)
  let over = Helpers.schedule_of_strings [ [ "1"; "1" ]; [ "1"; "1" ] ] in
  (match F.Certify.check inst over ~claimed:2 with
  | Ok _ -> Alcotest.fail "overused witness certified"
  | Error msg ->
    Alcotest.(check bool) "names the overused step" true
      (Helpers.contains ~needle:"resource overused at step" msg));
  (* Width mismatch. *)
  let narrow = Helpers.schedule_of_strings [ [ "1" ] ] in
  Alcotest.(check bool) "width mismatch rejected" true
    (Result.is_error (F.Certify.check inst narrow ~claimed:1))

(* The acceptance criterion: every witness from every witness-capable
   solver certifies — across the adversarial gallery and 200 random
   instances. Exponential exact solvers are gated to small instances so
   the sweep stays inside tier-1 budget. *)
let certify_all_witnesses instance =
  List.iter
    (fun solver ->
      if
        R.witness solver
        && (R.kind solver <> R.Exact
           || (Instance.total_jobs instance <= 8 && Instance.m instance <= 3))
        && R.applicability solver instance = Ok ()
      then
        (* ~certify:true raises Failure if the independent audit fails. *)
        ignore (R.solve ~certify:true solver instance))
    R.all

let test_certify_gallery () =
  List.iter certify_all_witnesses
    [
      A.figure1;
      A.figure2;
      A.round_robin_family ~n:4;
      A.greedy_balance_family ~m:2 ~blocks:2 ();
      A.figure5;
    ]

let test_certify_random_sweep () =
  let st = Random.State.make [| 7391 |] in
  for _ = 1 to 200 do
    certify_all_witnesses (Helpers.random_instance ~max_m:3 ~max_jobs:3 st)
  done

let test_registry_hook_wiring () =
  (* A failing certifier turns a clean solve into a Failure naming the
     solver; reinstalling the real one restores service. *)
  let inst = Helpers.instance_of_strings [ [ "1/2"; "1/2" ] ] in
  let solver = R.find_exn R.Names.greedy_balance in
  R.install_certifier (fun _ _ ~claimed:_ -> Error "boom");
  (try
     ignore (R.solve ~certify:true solver inst);
     F.Certify.install ();
     Alcotest.fail "sabotaged certifier accepted the witness"
   with Failure msg ->
     F.Certify.install ();
     Alcotest.(check bool) "failure carries the certifier message" true
       (Helpers.contains ~needle:"boom" msg
       && Helpers.contains ~needle:"greedy-balance" msg));
  ignore (R.solve ~certify:true solver inst)

(* ---------- Oracles ---------- *)

let test_oracles_pass_on_random_instances () =
  let config =
    { F.Driver.default_config with m = 2; n = 2; seed_lo = 1; seed_hi = 15 }
  in
  List.iter
    (fun oracle ->
      let report = F.Driver.run config oracle in
      Alcotest.(check int)
        (oracle.F.Oracle.name ^ ": no failures")
        0 report.F.Driver.failures;
      Alcotest.(check int)
        (oracle.F.Oracle.name ^ ": no timeouts")
        0 report.F.Driver.timeouts)
    F.Oracle.all

let test_oracle_catches_wrong_makespan () =
  (* An oracle fed a deliberately wrong candidate must fail with a
     message naming both values. *)
  let oracle =
    F.Oracle.differential ~name:"off-by-one"
      ~reference:Crs_algorithms.Brute_force.makespan
      ~candidate:(fun i -> Crs_algorithms.Brute_force.makespan i + 1)
      ()
  in
  let inst = Helpers.instance_of_strings [ [ "1/2" ] ] in
  match oracle.F.Oracle.check inst with
  | Ok () -> Alcotest.fail "off-by-one candidate passed"
  | Error msg ->
    Alcotest.(check bool) "names candidate and reference" true
      (Helpers.contains ~needle:"candidate = 2" msg
      && Helpers.contains ~needle:"reference = 1" msg)

(* ---------- Shrink ---------- *)

let test_shrink_candidates () =
  let inst = Helpers.instance_of_strings [ [ "3/10"; "7/10" ]; [ "9/10" ] ] in
  let cands = F.Shrink.candidates inst in
  Alcotest.(check bool) "some candidate drops a processor" true
    (List.exists (fun c -> Instance.m c = 1) cands);
  Alcotest.(check bool) "some candidate drops a job" true
    (List.exists
       (fun c -> Instance.m c = 2 && Instance.total_jobs c = 2)
       cands);
  Alcotest.(check bool) "no candidate grows the instance" true
    (List.for_all
       (fun c ->
         Instance.total_jobs c <= Instance.total_jobs inst
         && Instance.m c <= Instance.m inst)
       cands);
  (* The empty-ish end of the lattice: a single unit job has only
     requirement-rounding moves left, a jobless instance none. *)
  let tiny = Helpers.instance_of_strings [ [ "3/10" ] ] in
  Alcotest.(check bool) "tiny instance still rounds requirements" true
    (F.Shrink.candidates tiny <> [])

let test_shrink_minimize_local_minimum () =
  let inst = Helpers.instance_of_strings [ [ "3/10"; "7/10" ]; [ "9/10"; "1/2" ] ] in
  let failing i = Instance.total_jobs i >= 2 in
  let shrunk, stats = F.Shrink.minimize ~failing inst in
  Alcotest.(check bool) "still failing" true (failing shrunk);
  Alcotest.(check int) "locally minimal: exactly 2 jobs" 2
    (Instance.total_jobs shrunk);
  Alcotest.(check bool) "accepted steps recorded" true (stats.F.Shrink.accepted > 0);
  Alcotest.check_raises "healthy instance refused"
    (Invalid_argument "Shrink.minimize: instance does not fail the oracle")
    (fun () ->
      ignore
        (F.Shrink.minimize
           ~failing:(fun _ -> false)
           (Helpers.instance_of_strings [ [ "1/2" ] ])))

(* The issue's mutation self-test: inject an off-by-one relaxation into
   the m=2 DP, fuzz until the differential oracle catches it, shrink,
   and land on a counterexample of at most 4 jobs — deterministically. *)
let mutation_oracle =
  F.Oracle.differential ~name:"mutated-opt-two"
    ~about:"Opt_two with an injected off-by-one against brute force"
    ~applies:(fun i ->
      Instance.m i = 2 && Instance.is_unit_size i && Instance.total_jobs i <= 10)
    ~reference:Crs_algorithms.Brute_force.makespan
    ~candidate:(fun i ->
      let ms = Crs_algorithms.Opt_two.makespan i in
      if ms >= 2 then ms - 1 else ms)
    ()

let run_mutation_hunt () =
  let config =
    { F.Driver.default_config with m = 2; n = 2; seed_lo = 1; seed_hi = 100 }
  in
  let report = F.Driver.run config mutation_oracle in
  match F.Driver.failing_cases report with
  | [] -> Alcotest.fail "injected mutation was never caught"
  | (seed, _) :: _ ->
    let shrunk, _stats = F.Driver.shrink_failure config mutation_oracle ~seed in
    (seed, shrunk)

let test_mutation_self_test () =
  let seed, shrunk = run_mutation_hunt () in
  Alcotest.(check bool) "oracle still fails on the minimized instance" true
    (mutation_oracle.F.Oracle.applies shrunk
    && Result.is_error (mutation_oracle.F.Oracle.check shrunk));
  Alcotest.(check bool)
    (Printf.sprintf "shrunk to <= 4 jobs (got %d)" (Instance.total_jobs shrunk))
    true
    (Instance.total_jobs shrunk <= 4);
  (* Deterministic end to end: hunting again finds the same seed and the
     same minimal instance. *)
  let seed', shrunk' = run_mutation_hunt () in
  Alcotest.(check int) "same first failing seed" seed seed';
  Alcotest.(check string) "same minimal counterexample"
    (Instance.to_string shrunk) (Instance.to_string shrunk')

(* ---------- Corpus ---------- *)

let sample_entry () =
  F.Corpus.make ~name:"sample" ~oracle:"exact-agreement" ~note:"round \"trip\""
    ~family:"uniform" ~seed:1 ~gen_m:3 ~gen_n:3 ~gen_granularity:10
    (F.Driver.instance_of F.Driver.default_config ~seed:1)

let test_corpus_roundtrip () =
  let e = sample_entry () in
  match F.Corpus.of_json (F.Corpus.to_json e) with
  | Error msg -> Alcotest.fail ("roundtrip parse failed: " ^ msg)
  | Ok e' ->
    Alcotest.(check string) "name" e.F.Corpus.name e'.F.Corpus.name;
    Alcotest.(check string) "oracle" e.F.Corpus.oracle e'.F.Corpus.oracle;
    Alcotest.(check string) "note survives escaping" e.F.Corpus.note e'.F.Corpus.note;
    Alcotest.(check string) "instance text" e.F.Corpus.instance_text
      e'.F.Corpus.instance_text;
    Alcotest.(check string) "digest" e.F.Corpus.digest e'.F.Corpus.digest;
    Alcotest.(check bool) "seed fields" true
      (e'.F.Corpus.seed = Some 1 && e'.F.Corpus.gen_granularity = Some 10);
    Alcotest.(check bool) "replay passes" true (F.Corpus.replay e' = Ok ())

let test_corpus_detects_tampering () =
  let e = sample_entry () in
  (* A corrupted digest must be caught before anything is re-run. *)
  let tampered = { e with F.Corpus.digest = String.make 32 '0' } in
  (match F.Corpus.replay tampered with
  | Ok () -> Alcotest.fail "tampered digest replayed"
  | Error msg ->
    Alcotest.(check bool) "names the digest" true
      (Helpers.contains ~needle:"digest" msg));
  (* A drifted generator (wrong seed for the pinned text) is caught. *)
  let drifted = { e with F.Corpus.seed = Some 2 } in
  match F.Corpus.replay drifted with
  | Ok () -> Alcotest.fail "seed drift replayed"
  | Error msg ->
    Alcotest.(check bool) "names the seed" true
      (Helpers.contains ~needle:"seed" msg)

(* Tier-1 corpus replay: every pinned entry under data/corpus (copied
   into _build via the test deps) replays green. *)
let test_corpus_replay_pinned () =
  let entries = F.Corpus.load_dir "../data/corpus" in
  Alcotest.(check bool)
    (Printf.sprintf "at least 8 pinned entries (got %d)" (List.length entries))
    true
    (List.length entries >= 8);
  List.iter
    (fun (path, parsed) ->
      match parsed with
      | Error msg -> Alcotest.fail (path ^ ": " ^ msg)
      | Ok entry -> (
        match F.Corpus.replay entry with
        | Ok () -> ()
        | Error msg -> Alcotest.fail (path ^ ": " ^ msg)))
    entries

(* Seed-stability goldens: the exact text three known seeds generate.
   If Random.State or a generator family changes, this (and the pinned
   corpus) is the loud early warning. *)
let test_seed_stability_goldens () =
  let text family m n granularity seed =
    let fam = Option.get (Crs_campaign.Spec.family_of_string family) in
    Instance.to_string
      (Crs_campaign.Spec.instance
         { Crs_campaign.Spec.default with family = fam; m; n; granularity }
         ~seed)
  in
  Alcotest.(check string) "uniform seed 1"
    "1/2 3/10 1/5\n1/2 1/5 7/10\n1/5 3/10 1\n"
    (text "uniform" 3 3 10 1);
  let heavy = text "heavy-tailed" 3 3 10 42 in
  let balanced = text "balanced" 3 3 12 2024 in
  let pinned name =
    match F.Corpus.load_file (Filename.concat "../data/corpus" name) with
    | Ok e -> e.F.Corpus.instance_text
    | Error msg -> Alcotest.fail (name ^ ": " ^ msg)
  in
  Alcotest.(check string) "heavy-tailed seed 42 matches its pin"
    (pinned "seed-heavy-tailed-42.json") heavy;
  Alcotest.(check string) "balanced seed 2024 matches its pin"
    (pinned "seed-balanced-2024.json") balanced

(* ---------- Driver ---------- *)

let test_driver_deterministic () =
  let config =
    { F.Driver.default_config with m = 2; n = 2; seed_lo = 1; seed_hi = 12 }
  in
  let oracle = Option.get (F.Oracle.find "exact-agreement") in
  let a = F.Driver.run ~domains:1 config oracle in
  let b = F.Driver.run ~domains:3 config oracle in
  Alcotest.(check string) "byte-identical render across pool sizes"
    (F.Driver.render a) (F.Driver.render b);
  Alcotest.(check string) "digest agrees" (F.Driver.render_digest a)
    (F.Driver.render_digest b);
  Alcotest.(check int) "one case per seed" 12 (Array.length a.F.Driver.cases);
  (* The trailing line carries the MD5 of everything above it, so a
     report is self-checking as a blob of text. *)
  let rendered = F.Driver.render a in
  (match String.rindex_opt rendered ' ' with
  | None -> Alcotest.fail "render has no digest line"
  | Some i ->
    let trailing = String.sub rendered (i + 1) (String.length rendered - i - 2) in
    let marker = "report digest " in
    let body_len = String.length rendered - String.length marker - 33 in
    Alcotest.(check string) "trailing digest covers the body" trailing
      (Digest.to_hex (Digest.string (String.sub rendered 0 body_len))));
  Alcotest.(check bool) "render mentions the digest marker" true
    (Helpers.contains ~needle:"report digest " rendered)

let test_driver_rejects_bad_config () =
  let oracle = Option.get (F.Oracle.find "exact-agreement") in
  let bad = { F.Driver.default_config with seed_lo = 5; seed_hi = 4 } in
  (try
     ignore (F.Driver.run bad oracle);
     Alcotest.fail "inverted seed range accepted"
   with Invalid_argument _ -> ());
  let bad = { F.Driver.default_config with m = 0 } in
  try
    ignore (F.Driver.run bad oracle);
    Alcotest.fail "m = 0 accepted"
  with Invalid_argument _ -> ()

let test_driver_times_out_on_tiny_fuel () =
  (* A starved budget must surface as Timeout cases, never a hang. *)
  let config =
    {
      F.Driver.default_config with
      m = 3;
      n = 3;
      seed_lo = 1;
      seed_hi = 3;
      fuel = Some 5;
    }
  in
  let oracle = Option.get (F.Oracle.find "exact-agreement") in
  let report = F.Driver.run config oracle in
  Alcotest.(check int) "every seed timed out" 3 report.F.Driver.timeouts

let suite =
  [
    Alcotest.test_case "certify: accepts an optimal witness" `Quick
      test_certify_accepts_witness;
    Alcotest.test_case "certify: rejects corrupted witnesses" `Quick
      test_certify_rejects_corruption;
    Alcotest.test_case "certify: adversarial gallery sweep" `Quick
      test_certify_gallery;
    Alcotest.test_case "certify: 200-instance random sweep" `Quick
      test_certify_random_sweep;
    Alcotest.test_case "registry: certify hook wiring" `Quick
      test_registry_hook_wiring;
    Alcotest.test_case "oracles: clean pass on random instances" `Quick
      test_oracles_pass_on_random_instances;
    Alcotest.test_case "oracles: differential catches a wrong candidate" `Quick
      test_oracle_catches_wrong_makespan;
    Alcotest.test_case "shrink: candidate enumeration" `Quick test_shrink_candidates;
    Alcotest.test_case "shrink: minimize reaches a local minimum" `Quick
      test_shrink_minimize_local_minimum;
    Alcotest.test_case "mutation self-test: caught and shrunk to <= 4 jobs" `Quick
      test_mutation_self_test;
    Alcotest.test_case "corpus: JSON roundtrip" `Quick test_corpus_roundtrip;
    Alcotest.test_case "corpus: tampering detected" `Quick
      test_corpus_detects_tampering;
    Alcotest.test_case "corpus: pinned entries replay (tier-1)" `Quick
      test_corpus_replay_pinned;
    Alcotest.test_case "corpus: seed-stability goldens" `Quick
      test_seed_stability_goldens;
    Alcotest.test_case "driver: byte-identical across pool sizes" `Quick
      test_driver_deterministic;
    Alcotest.test_case "driver: rejects bad configs" `Quick
      test_driver_rejects_bad_config;
    Alcotest.test_case "driver: fuel exhaustion -> timeout" `Quick
      test_driver_times_out_on_tiny_fuel;
  ]
