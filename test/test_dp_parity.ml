(* Differential parity: the flat-state DP kernels (Opt_two, Opt_config)
   against the frozen boxed kernels vendored for the benchmark gate
   (bench/legacy). The bench asserts parity on one Figure-3 instance
   before timing; this suite pins it across the persisted corpus, a
   fresh seeded population, and hand-built instances that straddle the
   small/bigint tier boundary — the layouts' hard cases (common-
   denominator mode refused, small-tier sums spilling to the side
   table, bigint-tier requirements).

   Contract: Opt_two must agree byte-for-byte — makespan, every
   schedule row, and both work counters. Opt_config must agree on
   makespan, the generated count and the per-layer survivor profile
   (the flat kernel orders survivors canonically where the boxed one
   inherited hash-bucket order, so the replayed witness may pick a
   different equally-good parent); both witnesses must certify. *)

module Q = Crs_num.Rational
open Crs_core
module O2 = Crs_algorithms.Opt_two
module OC = Crs_algorithms.Opt_config
module L2 = Crs_legacy.Legacy_opt_two
module LC = Crs_legacy.Legacy_opt_config

let parity_two name instance =
  let f = O2.solve instance and l = L2.solve instance in
  Alcotest.(check int) (name ^ ": opt_two makespan") l.L2.makespan f.O2.makespan;
  Alcotest.(check string)
    (name ^ ": opt_two schedule rows byte-identical")
    (Schedule.to_string l.L2.schedule)
    (Schedule.to_string f.O2.schedule);
  Alcotest.(check int)
    (name ^ ": opt_two cells_expanded")
    l.L2.counters.L2.cells_expanded f.O2.counters.O2.cells_expanded;
  Alcotest.(check int)
    (name ^ ": opt_two relaxations")
    l.L2.counters.L2.relaxations f.O2.counters.O2.relaxations

let parity_config name instance =
  let f = OC.solve instance and l = LC.solve instance in
  Alcotest.(check int) (name ^ ": opt_config makespan") l.LC.makespan
    f.OC.makespan;
  Alcotest.(check int)
    (name ^ ": opt_config generated")
    l.LC.stats.LC.generated f.OC.stats.OC.generated;
  Alcotest.(check (list int))
    (name ^ ": opt_config layer profile")
    l.LC.stats.LC.layers f.OC.stats.OC.layers;
  (match Crs_fuzz.Certify.check instance f.OC.schedule ~claimed:f.OC.makespan with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "%s: flat witness rejected: %s" name msg);
  match Crs_fuzz.Certify.check instance l.LC.schedule ~claimed:l.LC.makespan with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "%s: legacy witness rejected: %s" name msg

(* Every pinned corpus entry that a kernel accepts must agree with its
   frozen baseline (Opt_config is exponential in width, so cap it at
   instances the boxed kernel solves instantly). *)
let test_corpus_parity () =
  let entries = Crs_fuzz.Corpus.load_dir "../data/corpus" in
  Alcotest.(check bool) "corpus present" true (entries <> []);
  let two = ref 0 and cfg = ref 0 in
  List.iter
    (fun (file, entry) ->
      match entry with
      | Error msg -> Alcotest.failf "%s: unreadable corpus entry: %s" file msg
      | Ok e -> (
        match Instance.of_string e.Crs_fuzz.Corpus.instance_text with
        | Error msg -> Alcotest.failf "%s: unparseable instance: %s" file msg
        | Ok i ->
          if Instance.is_unit_size i then begin
            if Instance.m i = 2 then begin
              incr two;
              parity_two file i
            end;
            if Instance.m i <= 4 && Instance.total_jobs i <= 10 then begin
              incr cfg;
              parity_config file i
            end
          end))
    entries;
  Alcotest.(check bool)
    (Printf.sprintf "corpus exercised both kernels (opt_two %d, opt_config %d)"
       !two !cfg)
    true
    (!two >= 1 && !cfg >= 1)

(* 200 fresh seeded instances (not from the corpus): 140 two-processor
   ones through Opt_two (the first 40 also through Opt_config), then 45
   three- and 15 four-processor ones through Opt_config alone. Mixed
   granularities keep both encodings in play: most draws stay in
   common-denominator mode, coprime-granularity pairs fall back to the
   canonical-pair path. *)
let test_fresh_seeded_parity () =
  let st = Random.State.make [| 0xD9; 8 |] in
  for k = 1 to 140 do
    let rows =
      Array.init 2 (fun _ ->
          let g = 2 + Random.State.int st 11 in
          Array.init
            (1 + Random.State.int st 6)
            (fun _ -> Helpers.rand_req st g))
    in
    let i = Instance.of_requirements rows in
    parity_two (Printf.sprintf "fresh m=2 #%d" k) i;
    if k <= 40 then parity_config (Printf.sprintf "fresh m=2 #%d" k) i
  done;
  for k = 1 to 45 do
    let rows =
      Array.init 3 (fun _ ->
          let g = 2 + Random.State.int st 11 in
          Array.init
            (1 + Random.State.int st 3)
            (fun _ -> Helpers.rand_req st g))
    in
    parity_config (Printf.sprintf "fresh m=3 #%d" k) (Instance.of_requirements rows)
  done;
  for k = 1 to 15 do
    let rows =
      Array.init 4 (fun _ ->
          let g = 2 + Random.State.int st 11 in
          Array.init
            (1 + Random.State.int st 2)
            (fun _ -> Helpers.rand_req st g))
    in
    parity_config (Printf.sprintf "fresh m=4 #%d" k) (Instance.of_requirements rows)
  done

(* Hand-built instances at the small/bigint seam. [Q.small_bound] is
   the largest canonical small-tier part; requirements with numerators
   near it force every escape hatch in turn. *)
let test_tier_boundary_parity () =
  let b = Q.small_bound in
  let i rows = Helpers.instance_of_strings rows in
  let frac p q = Printf.sprintf "%d/%d" p q in
  (* Sums of near-bound remainders overflow the small tier: the start
     cell's remainder already needs the bigint spill table, and the lcm
     of the denominators is far past small_bound, so common-denominator
     mode must refuse the instance. *)
  let spill =
    i
      [
        [ frac (b - 2) b; "1/3"; frac (b - 1) b ];
        [ frac (b - 3) b; "2/3"; "1/2" ];
      ]
  in
  parity_two "spill-over-bound" spill;
  parity_config "spill-over-bound" spill;
  (* Coprime ~2^16 denominators: each requirement is comfortably
     small-tier but their lcm (~2^32) exceeds small_bound, so the
     kernels must run the canonical-pair path without ever spilling. *)
  let lcm_overflow =
    i
      [
        [ frac 1 65521; frac 2 65521; frac 65520 65521 ];
        [ frac 1 65519; frac 3 65519 ];
      ]
  in
  parity_two "lcm-overflow" lcm_overflow;
  parity_config "lcm-overflow" lcm_overflow;
  (* A genuinely bigint-tier requirement (numerator and denominator
     above small_bound): prefetch leaves reqq = 0 and every touch of
     this job must take the boxed route. *)
  let big_req =
    i
      [
        [ frac (b + 1) (b + 2); "1/2" ];
        [ "1/2"; frac (b + 1) (b + 2) ];
      ]
  in
  parity_two "bigint-requirement" big_req;
  parity_config "bigint-requirement" big_req;
  (* lcm exactly AT the bound (small_bound is prime, so a denominator
     of small_bound pins the lcm there): the largest denominator
     common-denominator mode may accept. *)
  let at_bound =
    i [ [ frac 1 b; frac 2 b ]; [ frac 3 b; frac 1 b ] ]
  in
  parity_two "lcm-at-bound" at_bound;
  parity_config "lcm-at-bound" at_bound

(* The rewrite hoisted Opt_two's fuel tick past the reachability check:
   fuel is charged per REACHED cell, and the cells_expanded counter is
   now exactly the solve's fuel price. The instance keeps the start
   remainder <= 1, so the DP walks the diagonal and most grid cells
   stay unreachable — the pre-rewrite kernel ticked all of them. *)
let test_fuel_price_is_reachable_cells () =
  let i = Helpers.instance_of_strings [ [ "1/4"; "1/2" ]; [ "1/4"; "1/2" ] ] in
  let before = Crs_util.Fuel.ticks () in
  let sol = O2.solve i in
  let spent = Crs_util.Fuel.ticks () - before in
  Alcotest.(check int) "diagonal instance reaches 2 of 8 grid cells" 2
    sol.O2.counters.O2.cells_expanded;
  Alcotest.(check int) "fuel spent = cells expanded"
    sol.O2.counters.O2.cells_expanded spent;
  Alcotest.(check int) "budget = reachable count completes" 2
    (Crs_util.Fuel.with_fuel (Some 2) (fun () -> O2.makespan i));
  Alcotest.(check bool) "one tick fewer runs dry" true
    (match Crs_util.Fuel.with_fuel (Some 1) (fun () -> O2.makespan i) with
    | _ -> false
    | exception Crs_util.Fuel.Out_of_fuel -> true)

let suite =
  [
    Alcotest.test_case "corpus instances agree with frozen kernels" `Quick
      test_corpus_parity;
    Alcotest.test_case "200 fresh seeded instances agree" `Quick
      test_fresh_seeded_parity;
    Alcotest.test_case "tier-boundary instances agree" `Quick
      test_tier_boundary_parity;
    Alcotest.test_case "opt_two fuel price = reachable cells" `Quick
      test_fuel_price_is_reachable_cells;
  ]
