(* crs_serve balancer: rendezvous routing determinism, the PROTOCOL.md
   inventory tripwire, and end-to-end sharded-tier tests over real
   `crsched serve` worker processes — byte-identity through the
   balancer, worker-kill-and-restart with exact accounting, and
   warm-tier replay. Tests run in _build/default/test with the crsched
   binary at ../bin/crsched.exe (a dune dep). *)

open Crs_core
module Balancer = Crs_serve.Balancer
module Canon = Crs_serve.Canon
module Protocol = Crs_serve.Protocol
module Loadgen = Crs_serve.Loadgen
module J = Crs_util.Stable_json

let exe = Filename.concat ".." (Filename.concat "bin" "crsched.exe")

let random_instance ?(m = 3) seed =
  let spec =
    { Crs_generators.Random_gen.default_spec with m; jobs_min = 2; jobs_max = 4 }
  in
  Crs_generators.Random_gen.instance ~spec (Random.State.make [| seed |])

(* ---- routing ---- *)

let test_route_deterministic () =
  let keys = List.init 200 (fun i -> Printf.sprintf "key-%d" i) in
  let hits = Array.make 4 0 in
  List.iter
    (fun key ->
      let s = Balancer.route ~shards:4 key in
      Alcotest.(check int)
        (Printf.sprintf "%s routes stably" key)
        s
        (Balancer.route ~shards:4 key);
      Alcotest.(check bool) "in range" true (s >= 0 && s < 4);
      hits.(s) <- hits.(s) + 1)
    keys;
  (* Rendezvous hashing spreads: with 200 keys over 4 shards, each
     shard must see a healthy share (exact counts are a pure function
     of MD5, so this cannot flake). *)
  Array.iteri
    (fun i n ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d got a fair share (%d)" i n)
        true (n > 20))
    hits;
  List.iter
    (fun key ->
      Alcotest.(check int) "single shard routes everything" 0
        (Balancer.route ~shards:1 key))
    keys

let test_route_canonical_equivalents_agree () =
  for seed = 1 to 40 do
    let i = random_instance seed in
    let m = Instance.m i in
    let permuted =
      Instance.sub_processors i (List.init m (fun k -> m - 1 - k))
    in
    let padded = Crs_fuzz.Oracle.zero_pad_instance i in
    let shard_of x = Balancer.route ~shards:3 (Canon.key x) in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: permuted instance, same shard" seed)
      (shard_of i) (shard_of permuted);
    Alcotest.(check int)
      (Printf.sprintf "seed %d: padded instance, same shard" seed)
      (shard_of i) (shard_of padded)
  done

(* ---- PROTOCOL.md inventory ---- *)

(* Exhaustive match: adding a request constructor without extending this
   function is a compile error, and the new kind's name must then appear
   in docs/PROTOCOL.md for the inventory check to pass — the doc cannot
   silently fall behind the protocol. *)
let documented_kind = function
  | Protocol.Hello -> "hello"
  | Protocol.Solve _ -> "solve"
  | Protocol.Campaign _ -> "campaign"
  | Protocol.Stats -> "stats"
  | Protocol.Shutdown -> "shutdown"

let request_kind_names =
  let solve =
    {
      Protocol.algorithm = "greedy-balance";
      instance = Instance.create [| [| Job.unit Crs_num.Rational.one |] |];
      fuel = None;
      witness = false;
      certify = false;
      cache = true;
    }
  in
  let campaign =
    {
      Crs_campaign.Spec.family = Crs_campaign.Spec.Uniform;
      m = 2;
      n = 2;
      granularity = 4;
      seed_lo = 1;
      seed_hi = 1;
      algorithms = [ "greedy-balance" ];
      baseline = Crs_campaign.Spec.Lower_bound;
      fuel = None;
    }
  in
  List.map documented_kind
    [
      Protocol.Hello;
      Protocol.Solve solve;
      Protocol.Campaign campaign;
      Protocol.Stats;
      Protocol.Shutdown;
    ]

let statuses =
  [
    "ok"; "error"; "timeout"; "overloaded"; "not_applicable"; "draining";
    "evicted";
  ]

let test_protocol_doc_inventory () =
  let doc =
    In_channel.with_open_text
      (Filename.concat ".." (Filename.concat "docs" "PROTOCOL.md"))
      In_channel.input_all
  in
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        (Printf.sprintf "PROTOCOL.md documents request kind %S" kind)
        true
        (Helpers.contains ~needle:(Printf.sprintf "\"kind\":\"%s\"" kind) doc))
    request_kind_names;
  List.iter
    (fun status ->
      Alcotest.(check bool)
        (Printf.sprintf "PROTOCOL.md documents status %S" status)
        true
        (Helpers.contains ~needle:(Printf.sprintf "`%s`" status) doc))
    statuses;
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "PROTOCOL.md covers %s" needle)
        true
        (Helpers.contains ~needle doc))
    [ "crs-serve/1"; "crs-warm/1"; "\"kind\":\"response\""; "stats"; "warm" ]

(* ---- end-to-end tiers over real shard processes ---- *)

let temp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "crsbal-%d-%d" (Unix.getpid ()) !n)
    in
    Unix.mkdir dir 0o700;
    dir

let tier_config ?(warm_state = "") ~socket_dir ~shards () =
  let shard_argv ~index ~socket =
    let base =
      [
        exe; "serve";
        "--listen"; "unix:" ^ socket;
        "--workers"; "1";
        "--queue"; "16";
        "--cache"; "64";
      ]
    in
    let warm =
      if warm_state = "" then []
      else
        [
          "--warm-state"; warm_state;
          "--warm-id"; Printf.sprintf "shard-%d" index;
        ]
    in
    Array.of_list (base @ warm)
  in
  {
    (Balancer.default_config ~shards ~socket_dir ~shard_argv) with
    Balancer.health_interval_s = 0.2;
    restart_backoff_s = 0.05;
    drain_grace_s = 0.2;
  }

let with_tier cfg f =
  match Balancer.create cfg with
  | Error msg -> Alcotest.failf "tier failed to start: %s" msg
  | Ok t -> Fun.protect ~finally:(fun () -> Balancer.drain t) (fun () -> f t)

type conn = {
  client : Loadgen.Client.t;
  client_fd : Unix.file_descr;
  reader : Thread.t option;
}

let open_conn t =
  let balancer_fd, client_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* Without close-on-exec a respawned shard inherits this fd at
     create_process time, and closing our end then never produces EOF
     for the balancer's reader (attach covers the balancer side). *)
  Unix.set_close_on_exec client_fd;
  let reader = Balancer.attach t balancer_fd in
  { client = Loadgen.Client.of_fd client_fd; client_fd; reader }

let close_conn c =
  (try Unix.close c.client_fd with Unix.Unix_error _ -> ());
  match c.reader with Some th -> Thread.join th | None -> ()

let solve_line ?(extra = []) instance =
  J.obj
    ([
       ("proto", J.str Protocol.version);
       ("kind", J.str "solve");
       ("instance", J.str (Instance.to_string instance));
     ]
    @ extra)

let response_status line =
  match J.parse line with
  | Ok json -> (
    match J.member "status" json with
    | Some (J.Str s) -> s
    | _ -> Alcotest.failf "response without status: %s" line)
  | Error msg -> Alcotest.failf "unparseable response %s: %s" line msg

let balancer_stat t path =
  match J.parse (J.obj (Balancer.stats_payload t)) with
  | Error msg -> Alcotest.failf "stats payload unparseable: %s" msg
  | Ok json -> (
    (* Numeric path segments index into arrays (the per-shard list under
       balancer.shard). *)
    let rec walk json = function
      | [] -> Some json
      | k :: rest -> (
        match (json, int_of_string_opt k) with
        | J.List items, Some i when i >= 0 && i < List.length items ->
          walk (List.nth items i) rest
        | _ -> Option.bind (J.member k json) (fun j -> walk j rest))
    in
    match walk json path with
    | Some (J.Int v) -> v
    | _ -> Alcotest.failf "stats lack %s" (String.concat "." path))

let check_accounting t =
  Alcotest.(check int) "accepted = answered + refused"
    (balancer_stat t [ "balancer"; "accepted" ])
    (balancer_stat t [ "balancer"; "answered" ]
    + balancer_stat t [ "balancer"; "refused" ])

let test_tier_byte_identity () =
  let cfg = tier_config ~socket_dir:(temp_dir ()) ~shards:2 () in
  with_tier cfg (fun t ->
      let c = open_conn t in
      Fun.protect
        ~finally:(fun () -> close_conn c)
        (fun () ->
          let hello =
            Loadgen.Client.rpc c.client
              (J.obj
                 [ ("proto", J.str Protocol.version); ("kind", J.str "hello") ])
          in
          Alcotest.(check string) "hello answered at the front" "ok"
            (response_status hello);
          for seed = 1 to 6 do
            let i = random_instance seed in
            let m = Instance.m i in
            let permuted =
              Instance.sub_processors i (List.init m (fun k -> m - 1 - k))
            in
            let padded = Crs_fuzz.Oracle.zero_pad_instance i in
            let r = Loadgen.Client.rpc c.client (solve_line i) in
            Alcotest.(check string)
              (Printf.sprintf "seed %d: solve ok" seed)
              "ok" (response_status r);
            (* The sharding guarantee: canonically equivalent requests
               route to the same shard's cache and come back
               byte-identical through the balancer. *)
            Alcotest.(check string)
              (Printf.sprintf "seed %d: permuted byte-identical" seed)
              r
              (Loadgen.Client.rpc c.client (solve_line permuted));
            Alcotest.(check string)
              (Printf.sprintf "seed %d: padded byte-identical" seed)
              r
              (Loadgen.Client.rpc c.client (solve_line padded))
          done;
          check_accounting t;
          Alcotest.(check int) "nothing refused on a healthy tier" 0
            (balancer_stat t [ "balancer"; "refused" ])))

let test_tier_kill_and_restart () =
  let cfg = tier_config ~socket_dir:(temp_dir ()) ~shards:2 () in
  with_tier cfg (fun t ->
      let c = open_conn t in
      Fun.protect
        ~finally:(fun () -> close_conn c)
        (fun () ->
          let i = random_instance 3 in
          let line = solve_line i in
          let golden = Loadgen.Client.rpc c.client line in
          Alcotest.(check string) "baseline solve ok" "ok"
            (response_status golden);
          (* Kill -9 exactly the shard this instance routes to. *)
          let shard = Balancer.route ~shards:2 (Canon.key i) in
          let pid = (Balancer.shard_pids t).(shard) in
          Alcotest.(check bool) "routed shard is running" true (pid > 0);
          Unix.kill pid Sys.sigkill;
          (* Drive requests through the outage. Every one must get a
             response — ok once the shard is back, or a structured
             overloaded refusal while it is down — and the tier must
             recover. *)
          let recovered = ref false in
          let refusals = ref 0 in
          let attempts = ref 0 in
          while (not !recovered) && !attempts < 400 do
            incr attempts;
            let r = Loadgen.Client.rpc c.client line in
            (match response_status r with
            | "ok" ->
              Alcotest.(check string) "post-restart answer byte-identical"
                golden r;
              recovered := true
            | "overloaded" -> incr refusals
            | s -> Alcotest.failf "unexpected status during outage: %s" s);
            if not !recovered then Thread.delay 0.01
          done;
          Alcotest.(check bool) "tier recovered after kill -9" true !recovered;
          let restarts = balancer_stat t [ "balancer"; "restarts" ] in
          Alcotest.(check bool)
            (Printf.sprintf "monitor restarted the shard (%d)" restarts)
            true (restarts >= 1);
          (* Exact accounting across the outage: no lost answers beyond
             the structured refusals we counted ourselves. *)
          check_accounting t;
          Alcotest.(check int) "refusals all structured and counted"
            !refusals
            (balancer_stat t [ "balancer"; "refused" ])))

let test_tier_warm_replay () =
  let socket_dir = temp_dir () in
  let warm_state = temp_dir () in
  let cfg = tier_config ~warm_state ~socket_dir ~shards:2 () in
  let instances = List.init 5 (fun i -> random_instance (30 + i)) in
  (* Cold tier: solve the corpus, then drain — each shard snapshots its
     canonical-key set. *)
  let cold =
    with_tier cfg (fun t ->
        let c = open_conn t in
        Fun.protect
          ~finally:(fun () -> close_conn c)
          (fun () ->
            List.map
              (fun i -> Loadgen.Client.rpc c.client (solve_line i))
              instances))
  in
  List.iter
    (fun r -> Alcotest.(check string) "cold solve ok" "ok" (response_status r))
    cold;
  Alcotest.(check bool) "warm snapshots written" true
    (Sys.file_exists (Filename.concat warm_state "shard-0.crs-warm.jsonl")
    || Sys.file_exists (Filename.concat warm_state "shard-1.crs-warm.jsonl"));
  (* Warm tier: same config, same warm state. Replay totals must cover
     the corpus, and re-solving it must be pure cache hits with
     byte-identical responses. *)
  with_tier cfg (fun t ->
      let replayed =
        balancer_stat t [ "balancer"; "shard"; "0"; "warm"; "replayed" ]
        + balancer_stat t [ "balancer"; "shard"; "1"; "warm"; "replayed" ]
      in
      Alcotest.(check int) "every snapshot entry replayed"
        (List.length instances) replayed;
      let hits_before =
        balancer_stat t [ "cache"; "hits" ]
      in
      let c = open_conn t in
      Fun.protect
        ~finally:(fun () -> close_conn c)
        (fun () ->
          List.iter2
            (fun i cold_r ->
              Alcotest.(check string) "warm answer byte-identical to cold"
                cold_r
                (Loadgen.Client.rpc c.client (solve_line i)))
            instances cold);
      Alcotest.(check int) "warm corpus is all cache hits"
        (hits_before + List.length instances)
        (balancer_stat t [ "cache"; "hits" ]))

let suite =
  [
    Alcotest.test_case "route: deterministic rendezvous spread" `Quick
      test_route_deterministic;
    Alcotest.test_case "route: canonical equivalents share a shard" `Quick
      test_route_canonical_equivalents_agree;
    Alcotest.test_case "docs: PROTOCOL.md inventory is complete" `Quick
      test_protocol_doc_inventory;
    Alcotest.test_case "tier: byte-identity through the balancer" `Quick
      test_tier_byte_identity;
    Alcotest.test_case "tier: kill -9 a shard, exact accounting" `Quick
      test_tier_kill_and_restart;
    Alcotest.test_case "tier: warm replay matches cold bytes" `Quick
      test_tier_warm_replay;
  ]
