(* fuzz-smoke: the tier-1 gate for the fuzzing subsystem.

   Fixed seeds, small instances, well under 5 seconds: every oracle
   sweeps a short seed range twice (reports must be byte-identical),
   and the pinned corpus replays green. Runs as a plain executable so
   `dune runtest` fails on a non-zero exit. *)

module F = Crs_fuzz

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "FAIL %s\n" msg)
    fmt

let () =
  (* 1. Every oracle, seeds 1..10 on m=2/n=2: clean and deterministic,
     including across pool sizes. *)
  let config =
    { F.Driver.default_config with m = 2; n = 2; seed_lo = 1; seed_hi = 10 }
  in
  List.iter
    (fun oracle ->
      let a = F.Driver.run ~domains:1 config oracle in
      let b = F.Driver.run ~domains:2 config oracle in
      let name = oracle.F.Oracle.name in
      if a.F.Driver.failures > 0 then
        List.iter
          (fun (seed, msg) -> fail "%s seed %d: %s" name seed msg)
          (F.Driver.failing_cases a);
      if a.F.Driver.timeouts > 0 then fail "%s: unexpected timeouts" name;
      if F.Driver.render a <> F.Driver.render b then
        fail "%s: report differs across pool sizes" name)
    F.Oracle.all;
  (* 2. Corpus replay (copied into _build by the deps above). *)
  let entries = F.Corpus.load_dir "../../data/corpus" in
  if List.length entries < 8 then
    fail "corpus: expected >= 8 entries, found %d" (List.length entries);
  List.iter
    (fun (path, parsed) ->
      match parsed with
      | Error msg -> fail "%s: %s" (Filename.basename path) msg
      | Ok entry -> (
        match F.Corpus.replay entry with
        | Ok () -> ()
        | Error msg -> fail "%s: %s" (Filename.basename path) msg))
    entries;
  if !failures > 0 then begin
    Printf.printf "fuzz-smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  Printf.printf "fuzz-smoke: %d oracles x seeds 1..10 clean, %d corpus entries green\n"
    (List.length F.Oracle.all) (List.length entries)
