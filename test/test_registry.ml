(* Parity and capability tests for the solver registry: every
   registered solver must agree with the direct module call it wraps,
   applicability must reject exactly the documented cases, and witness
   schedules must replay to the reported makespan. *)

open Crs_core
module R = Crs_algorithms.Registry
module H = Crs_algorithms.Heuristics

(* Random unit-size instance with an EXACT processor count (Helpers'
   generator draws m >= 2; here we also need m = 1). Granularities are
   mixed per job so the parity sweep covers non-uniform grids. *)
let random_instance_m st m =
  Instance.of_requirements
    (Array.init m (fun _ ->
         Array.init
           (1 + Random.State.int st 3)
           (fun _ -> Helpers.rand_req st (4 + Random.State.int st 8))))

(* The direct, pre-registry entry point for each solver. The parity
   test pins Registry.solve to these — a registry wrapper that silently
   dispatched to the wrong module would fail here. *)
let direct_makespan name instance =
  let module Alg = Crs_algorithms in
  if name = R.Names.greedy_balance then Alg.Greedy_balance.makespan instance
  else if name = R.Names.round_robin then Alg.Round_robin.makespan instance
  else if name = R.Names.uniform then H.makespan_of H.uniform instance
  else if name = R.Names.proportional then H.makespan_of H.proportional instance
  else if name = R.Names.staircase then H.makespan_of H.staircase instance
  else if name = R.Names.fewest_remaining_first then
    H.makespan_of H.fewest_remaining_first instance
  else if name = R.Names.largest_requirement_first then
    H.makespan_of H.largest_requirement_first instance
  else if name = R.Names.smallest_requirement_first then
    H.makespan_of H.smallest_requirement_first instance
  else if name = R.Names.optimal then
    if Instance.m instance = 2 then Alg.Opt_two.makespan instance
    else Alg.Opt_config.makespan instance
  else if name = R.Names.opt_two then Alg.Opt_two.makespan instance
  else if name = R.Names.opt_two_pq then Alg.Opt_two_pq.makespan instance
  else if name = R.Names.opt_two_pareto then Alg.Opt_two_pareto.makespan instance
  else if name = R.Names.opt_config then Alg.Opt_config.makespan instance
  else if name = R.Names.brute_force then Alg.Brute_force.makespan instance
  else if name = R.Names.online_greedy_balance then
    H.makespan_of (Online.to_policy Online.greedy_balance) instance
  else if name = R.Names.online_round_robin then
    H.makespan_of (Online.to_policy Online.round_robin) instance
  else Alcotest.fail ("no direct call known for solver " ^ name)

let test_registry_is_complete () =
  Alcotest.(check int) "16 solvers registered" 16 (List.length R.all);
  let sorted = List.sort_uniq compare R.names in
  Alcotest.(check int) "names unique" (List.length R.all) (List.length sorted);
  List.iter
    (fun n ->
      match R.find n with
      | Some s -> Alcotest.(check string) "find returns the named solver" n (R.name s)
      | None -> Alcotest.fail ("find lost solver " ^ n))
    R.names

let test_parity_with_direct_calls () =
  (* Seeded sweep over m in {1,2,3}: whenever a solver accepts the
     instance its registry makespan must equal the direct module call's. *)
  let checked = Hashtbl.create 16 in
  for seed = 1 to 12 do
    List.iter
      (fun m ->
        let st = Random.State.make [| 7 * seed; m |] in
        let instance = random_instance_m st m in
        List.iter
          (fun solver ->
            match R.applicability solver instance with
            | Error _ -> ()
            | Ok () ->
              let out = R.solve solver instance in
              let label =
                Printf.sprintf "%s seed=%d m=%d" (R.name solver) seed m
              in
              Alcotest.(check int) label
                (direct_makespan (R.name solver) instance)
                out.R.makespan;
              Hashtbl.replace checked (R.name solver) ())
          R.all)
      [ 1; 2; 3 ]
  done;
  (* Every solver must have been exercised at least once — a capability
     record that rejects everything would vacuously pass the loop. *)
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " exercised") true (Hashtbl.mem checked n))
    R.names

let test_witness_schedules_replay () =
  let st = Random.State.make [| 42 |] in
  let instance = random_instance_m st 2 in
  List.iter
    (fun solver ->
      match R.applicability solver instance with
      | Error _ -> ()
      | Ok () ->
        let out = R.solve solver instance in
        if R.witness solver then
          match out.R.schedule with
          | None ->
            Alcotest.fail (R.name solver ^ " promises a witness but returned none")
          | Some schedule ->
            Alcotest.(check int)
              (R.name solver ^ " witness replays to reported makespan")
              out.R.makespan
              (Execution.makespan (Execution.run_exn instance schedule))
        else
          Alcotest.(check bool)
            (R.name solver ^ " without witness returns no schedule")
            true (out.R.schedule = None))
    R.all

let test_applicability_rejections () =
  let st = Random.State.make [| 5 |] in
  let m1 = random_instance_m st 1 in
  let m3 = random_instance_m st 3 in
  let opt_two = R.find_exn R.Names.opt_two in
  (match R.applicability opt_two m3 with
  | Error msg ->
    Alcotest.(check bool) "m=3 rejection names the bound" true
      (Helpers.contains ~needle:"m <= 2" msg)
  | Ok () -> Alcotest.fail "opt-two must reject m = 3");
  (match R.applicability opt_two m1 with
  | Error msg ->
    Alcotest.(check bool) "m=1 rejection names the bound" true
      (Helpers.contains ~needle:"m >= 2" msg)
  | Ok () -> Alcotest.fail "opt-two must reject m = 1");
  (* Solving an inapplicable instance is a programming error, not a
     silent wrong answer. *)
  Alcotest.(check bool) "solve on inapplicable instance raises" true
    (try
       ignore (R.solve opt_two m3);
       false
     with Invalid_argument _ -> true);
  (* Policies accept any m, including the degenerate single processor. *)
  List.iter
    (fun (name, _) ->
      match R.applicability (R.find_exn name) m1 with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (name ^ " should accept m = 1: " ^ msg))
    R.policies

let test_find_unknown () =
  Alcotest.(check bool) "find returns None" true (R.find "no-such-solver" = None);
  Alcotest.(check bool) "find_exn raises with the valid names" true
    (try
       ignore (R.find_exn "no-such-solver");
       false
     with Invalid_argument msg ->
       Helpers.contains ~needle:"no-such-solver" msg
       && Helpers.contains ~needle:R.Names.greedy_balance msg)

let test_counters_populated () =
  let st = Random.State.make [| 11 |] in
  let instance = random_instance_m st 2 in
  let out name = R.solve (R.find_exn name) instance in
  let dp = (out R.Names.opt_two).R.counters in
  Alcotest.(check bool) "opt-two expands DP cells" true
    (dp.R.Counters.states_expanded > 0);
  let cfg = (out R.Names.opt_config).R.counters in
  Alcotest.(check bool) "opt-config enumerates configurations" true
    (cfg.R.Counters.configs_enumerated > 0);
  Alcotest.(check bool) "fuel-aware solvers report ticks" true
    (cfg.R.Counters.fuel_ticks > 0);
  let bf = (out R.Names.brute_force).R.counters in
  Alcotest.(check bool) "brute-force visits nodes" true
    (bf.R.Counters.states_expanded > 0);
  (* Instances that greedy solves optimally are pruned at the root and
     never reach the memo probe, so use the Figure-5 family, where
     greedy is adversarially bad and brute force genuinely searches. *)
  let fig5 = Crs_generators.Adversarial.greedy_balance_family ~m:3 ~blocks:2 () in
  let c = (R.solve (R.find_exn R.Names.brute_force) fig5).R.counters in
  Alcotest.(check bool) "brute-force reports memo hits" true
    (c.R.Counters.memo_hits > 0);
  Alcotest.(check bool) "brute-force reports memo misses" true
    (c.R.Counters.memo_misses > 0);
  Alcotest.(check int) "assoc order is stable"
    6 (List.length (R.Counters.to_assoc dp))

let suite =
  [
    Alcotest.test_case "registry covers all algorithms, names unique" `Quick
      test_registry_is_complete;
    Alcotest.test_case "parity: registry solve == direct module call" `Quick
      test_parity_with_direct_calls;
    Alcotest.test_case "witness schedules replay to the reported makespan" `Quick
      test_witness_schedules_replay;
    Alcotest.test_case "applicability rejects documented cases" `Quick
      test_applicability_rejections;
    Alcotest.test_case "unknown names: find/find_exn" `Quick test_find_unknown;
    Alcotest.test_case "counters populated per solver family" `Quick
      test_counters_populated;
  ]
