(* Tests for the paper's algorithms: RoundRobin (Thm 3), the exact
   solvers (Thms 5, 6), GreedyBalance (Thms 7, 8), cross-validated
   against one another and the brute-force reference. *)

module Q = Crs_num.Rational
open Crs_core
module A = Crs_generators.Adversarial

let q = Helpers.q

(* ---------- RoundRobin ---------- *)

let test_round_robin_phases () =
  let inst = Helpers.instance_of_strings [ [ "1/2"; "1/2" ]; [ "3/4"; "3/4" ] ] in
  (* Phase totals are 5/4 each: two steps per phase, makespan 4. *)
  Alcotest.(check int) "makespan" 4 (Crs_algorithms.Round_robin.makespan inst);
  Alcotest.(check int) "prediction matches" 4
    (Crs_algorithms.Round_robin.predicted_makespan_unit inst);
  Alcotest.(check int) "phase of step 1" 1 (Crs_algorithms.Round_robin.phase_of_step inst 1);
  Alcotest.(check int) "phase of step 3" 2 (Crs_algorithms.Round_robin.phase_of_step inst 3)

let test_round_robin_zero_phase () =
  (* A phase of zero-requirement jobs still needs one step. *)
  let inst = Helpers.instance_of_strings [ [ "0"; "1/2" ]; [ "0"; "1/2" ] ] in
  Alcotest.(check int) "prediction counts empty phases" 2
    (Crs_algorithms.Round_robin.predicted_makespan_unit inst);
  Alcotest.(check int) "measured" 2 (Crs_algorithms.Round_robin.makespan inst)

let test_round_robin_family () =
  List.iter
    (fun n ->
      let inst = A.round_robin_family ~n in
      let rr, opt = A.round_robin_family_predicted ~n in
      Alcotest.(check int) (Printf.sprintf "RR makespan n=%d" n) rr
        (Crs_algorithms.Round_robin.makespan inst);
      let witness = A.round_robin_family_opt_schedule ~n in
      let trace = Execution.run_exn inst witness in
      Alcotest.(check int) (Printf.sprintf "witness optimum n=%d" n) opt
        (Execution.makespan trace);
      Alcotest.check Helpers.check_q "witness wastes nothing" Q.zero
        (Execution.unused_capacity trace);
      (* The witness is truly optimal: the DP agrees. *)
      Alcotest.(check int) "DP confirms optimum" opt (Crs_algorithms.Opt_two.makespan inst))
    [ 2; 3; 7; 20 ]

let prop_round_robin_within_2x =
  Helpers.qcheck_case ~count:50 "Theorem 3: RR <= 2 OPT"
    (Helpers.gen_instance ~max_m:3 ~max_jobs:3 ()) (fun instance ->
      let rr = Crs_algorithms.Round_robin.makespan instance in
      let opt = Crs_algorithms.Brute_force.makespan instance in
      rr >= opt && rr <= 2 * opt)

let prop_round_robin_prediction =
  Helpers.qcheck_case ~count:50 "RR closed form matches simulation"
    (Helpers.gen_instance ()) (fun instance ->
      Crs_algorithms.Round_robin.makespan instance
      = Crs_algorithms.Round_robin.predicted_makespan_unit instance)

(* ---------- exact solvers cross-validation ---------- *)

let test_opt_two_requires_two_procs () =
  let inst = Helpers.instance_of_strings [ [ "1/2" ] ] in
  Alcotest.check_raises "m=1 rejected"
    (Invalid_argument "Opt_two: instance must have exactly 2 processors")
    (fun () -> ignore (Crs_algorithms.Opt_two.makespan inst))

let test_opt_two_simple_cases () =
  (* Two jobs that fit together: one step. *)
  let inst = Helpers.instance_of_strings [ [ "1/2" ]; [ "1/2" ] ] in
  Alcotest.(check int) "perfect fit" 1 (Crs_algorithms.Opt_two.makespan inst);
  (* Requirements 1 and 1: two steps. *)
  let inst2 = Helpers.instance_of_strings [ [ "1" ]; [ "1" ] ] in
  Alcotest.(check int) "sequential" 2 (Crs_algorithms.Opt_two.makespan inst2);
  (* Empty second processor. *)
  let inst3 = Helpers.instance_of_strings [ [ "1/4"; "1/4" ]; [] ] in
  Alcotest.(check int) "single processor side" 2 (Crs_algorithms.Opt_two.makespan inst3)

let test_opt_two_witness_valid () =
  let st = Random.State.make [| 17 |] in
  for _ = 1 to 30 do
    let inst = Helpers.random_instance ~max_m:2 st in
    let sol = Crs_algorithms.Opt_two.solve inst in
    let trace = Execution.run_exn inst sol.Crs_algorithms.Opt_two.schedule in
    Alcotest.(check bool) "witness completes" true trace.Execution.completed;
    Alcotest.(check int) "witness achieves claimed makespan"
      sol.Crs_algorithms.Opt_two.makespan (Execution.makespan trace)
  done

let prop_exact_solvers_agree_m2 =
  Helpers.qcheck_case ~count:60 "Opt_two = Opt_two_pq = Opt_config = brute force (m=2)"
    (Helpers.gen_instance ~max_m:2 ~max_jobs:4 ()) (fun instance ->
      let dp = Crs_algorithms.Opt_two.makespan instance in
      dp = Crs_algorithms.Opt_two_pq.makespan instance
      && dp = Crs_algorithms.Opt_config.makespan instance
      && dp = Crs_algorithms.Brute_force.makespan instance)

(* Lemma 3 audit: keeping only the lexicographic best (t, r) per cell
   never loses against keeping the full Pareto frontier. *)
let prop_lemma3_sufficiency =
  Helpers.qcheck_case ~count:60 "Lemma 3: lex DP = Pareto-frontier DP"
    (Helpers.gen_instance ~max_m:2 ~max_jobs:5 ()) (fun instance ->
      Crs_algorithms.Opt_two.makespan instance
      = Crs_algorithms.Opt_two_pareto.makespan instance)

let prop_exact_solvers_agree_m3 =
  Helpers.qcheck_case ~count:30 "Opt_config = brute force (m=3)"
    (Helpers.gen_instance ~max_m:3 ~max_jobs:3 ()) (fun instance ->
      Crs_algorithms.Opt_config.makespan instance
      = Crs_algorithms.Brute_force.makespan instance)

(* m=4 parity: the configuration DP against the brute-force reference
   on its widest testable machine count. The state space explodes with
   m, so counts and sizes stay tiny (1-2 jobs/proc, coarse grids). *)
let prop_exact_solvers_agree_m4 =
  Helpers.qcheck_case ~count:12 "Opt_config = brute force (m=4)"
    (QCheck2.Gen.map
       (fun seed ->
         let st = Random.State.make [| seed |] in
         Crs_generators.Random_gen.equal_rows ~m:4
           ~n:(1 + Random.State.int st 2)
           ~granularity:(3 + Random.State.int st 4)
           st)
       QCheck2.Gen.(int_bound 1_000_000))
    (fun instance ->
      Crs_algorithms.Opt_config.makespan instance
      = Crs_algorithms.Brute_force.makespan instance)

let prop_opt_config_prune_invariant =
  Helpers.qcheck_case ~count:25 "domination pruning preserves the optimum"
    (Helpers.gen_instance ~max_m:3 ~max_jobs:2 ()) (fun instance ->
      Crs_algorithms.Opt_config.makespan ~prune:true instance
      = Crs_algorithms.Opt_config.makespan ~prune:false instance)

let prop_lemma4_audit =
  Helpers.qcheck_case ~count:25 "Lemma 4: step-equal extended configs are comparable"
    (Helpers.gen_instance ~max_m:3 ~max_jobs:2 ()) (fun instance ->
      Crs_algorithms.Lemma4_audit.holds instance)

(* E4: without the nested restriction Lemma 4 fails; the witness below
   reaches two step-equal extended configurations with incomparable
   remainders (hand-verified via two explicit unnested schedules). *)
let test_lemma4_needs_nestedness () =
  let witness = Helpers.instance_of_strings [ [ "7/8" ]; [ "10/11"; "1" ]; [ "1/3"; "2/3" ] ] in
  let unrestricted = Crs_algorithms.Lemma4_audit.audit ~nested:false witness in
  Alcotest.(check bool) "E4: counterexample without nestedness" true
    (unrestricted.counterexample <> None);
  Alcotest.(check bool) "holds with nestedness" true
    (Crs_algorithms.Lemma4_audit.holds witness)

let test_lemma4_audit_strong_form () =
  (* Lemma 4's proof concludes step-equal extended configurations are
     identical; the enumeration should therefore never produce two
     DISTINCT step-equal ones. *)
  let inst =
    Helpers.instance_of_strings
      [ [ "3/4"; "1/2" ]; [ "3/4"; "1/2" ]; [ "1/2" ] ]
  in
  let v = Crs_algorithms.Lemma4_audit.audit inst in
  Alcotest.(check bool) "some configurations enumerated" true (v.configurations > 10);
  Alcotest.(check int) "strong form: no distinct step-equal pairs" 0 v.step_equal_pairs;
  Alcotest.(check (option string)) "no counterexample" None v.counterexample

let test_opt_config_witness_valid () =
  let st = Random.State.make [| 23 |] in
  for _ = 1 to 20 do
    let inst = Helpers.random_instance ~max_m:3 ~max_jobs:3 st in
    let sol = Crs_algorithms.Opt_config.solve inst in
    let trace = Execution.run_exn inst sol.Crs_algorithms.Opt_config.schedule in
    Alcotest.(check bool) "witness completes" true trace.Execution.completed;
    Alcotest.(check int) "witness achieves claimed makespan"
      sol.Crs_algorithms.Opt_config.makespan (Execution.makespan trace)
  done

let test_exact_lower_bounds () =
  let st = Random.State.make [| 31 |] in
  for _ = 1 to 20 do
    let inst = Helpers.random_instance ~max_m:2 st in
    let opt = Crs_algorithms.Opt_two.makespan inst in
    Alcotest.(check bool) "Obs 1 + job count below OPT" true
      (Lower_bounds.combined inst <= opt)
  done

(* ---------- GreedyBalance ---------- *)

let test_greedy_balance_family () =
  List.iter
    (fun (m, blocks) ->
      let inst = A.greedy_balance_family ~m ~blocks () in
      Alcotest.(check int)
        (Printf.sprintf "GB on family m=%d blocks=%d" m blocks)
        (A.greedy_balance_family_predicted ~m ~blocks)
        (Crs_algorithms.Greedy_balance.makespan inst))
    [ (2, 1); (2, 4); (3, 2); (4, 2); (5, 1) ]

let test_figure5_values () =
  (* The exact percentages of Figure 5 (first three blocks). *)
  let expect =
    [
      [ "99/100"; "7/100"; "1/100"; "49/50"; "13/100"; "1/100"; "49/50"; "19/100"; "1/100" ];
      [ "49/50"; "1/100"; "1/100"; "49/50"; "1/100"; "1/100"; "49/50"; "1/100"; "1/100" ];
      [ "97/100"; "1/100"; "1/100"; "23/25"; "1/100"; "1/100"; "43/50"; "1/100"; "1/100" ];
    ]
  in
  List.iteri
    (fun i row ->
      List.iteri
        (fun j cell ->
          Alcotest.check Helpers.check_q
            (Printf.sprintf "r_(%d,%d)" (i + 1) (j + 1))
            (q cell)
            (Job.requirement (Instance.job A.figure5 i j)))
        row)
    expect

let prop_theorem7_ratio =
  Helpers.qcheck_case ~count:50 "Theorem 7: GB <= (2-1/m) OPT"
    (Helpers.gen_instance ~max_m:3 ~max_jobs:3 ()) (fun instance ->
      let m = Instance.m instance in
      let gb = Crs_algorithms.Greedy_balance.makespan instance in
      let opt = Crs_algorithms.Brute_force.makespan instance in
      gb >= opt && gb * m <= ((2 * m) - 1) * opt)

let test_family_ratio_approaches_bound () =
  (* As blocks grow, GB/staircase approaches 2 - 1/m from below. *)
  let ratio m blocks =
    let inst = A.greedy_balance_family ~m ~blocks () in
    let gb = Crs_algorithms.Greedy_balance.makespan inst in
    let stair =
      Crs_algorithms.Heuristics.makespan_of Crs_algorithms.Heuristics.staircase inst
    in
    float_of_int gb /. float_of_int stair
  in
  let r4 = ratio 3 4 and r12 = ratio 3 12 in
  Alcotest.(check bool) "monotone toward bound" true (r12 > r4);
  Alcotest.(check bool) "within the proved bound" true (r12 <= 2.0 -. (1.0 /. 3.0));
  Alcotest.(check bool) "gets close (>= 1.5 at 12 blocks)" true (r12 >= 1.5)

let prop_theorem7_proof_bounds =
  (* The two intermediate inequalities from the Theorem 7 proof hold with
     the measured OPT: S/OPT <= min(Eq.10, Eq.11). *)
  Helpers.qcheck_case ~count:40 "Theorem 7 proof inequalities (Eq. 10/11)"
    (Helpers.gen_instance ~max_m:3 ~max_jobs:3 ()) (fun instance ->
      let m = Instance.m instance in
      let trace =
        Execution.run_exn instance (Crs_algorithms.Greedy_balance.schedule instance)
      in
      let g = Crs_hypergraph.Sched_graph.of_trace trace in
      let opt = Crs_algorithms.Brute_force.makespan instance in
      let ratio = Q.of_ints (Execution.makespan trace) opt in
      let eq10, eq11 = Crs_hypergraph.Bounds.theorem7_ratio_bounds g ~m in
      Q.(ratio <= eq11)
      || (match eq10 with Some b -> Q.(ratio <= b) | None -> false))

(* ---------- heuristics & solver facade ---------- *)

let test_heuristics_never_below_opt () =
  let st = Random.State.make [| 41 |] in
  for _ = 1 to 15 do
    let inst = Helpers.random_instance ~max_m:2 ~max_jobs:3 st in
    let opt = Crs_algorithms.Opt_two.makespan inst in
    List.iter
      (fun (name, policy) ->
        let ms = Crs_algorithms.Heuristics.makespan_of policy inst in
        Alcotest.(check bool) (name ^ " >= OPT") true (ms >= opt))
      Crs_algorithms.Registry.policies
  done

let test_certified_bound_on_families () =
  (* On the Figure 3 family the work bound is tight: OPT = n+1 exactly. *)
  let inst = A.round_robin_family ~n:30 in
  Alcotest.(check int) "RR family: certified LB = OPT" 31
    (Crs_algorithms.Solver.certified_lower_bound inst);
  (* On Figure 1 the best certified bound is 5, one below the optimum 6 —
     pinning the gap documents how tight the machinery is. *)
  Alcotest.(check int) "figure 1: certified LB" 5
    (Crs_algorithms.Solver.certified_lower_bound A.figure1)

let test_solver_facade () =
  let inst = Helpers.instance_of_strings [ [ "1/2"; "1/2" ]; [ "1/2" ] ] in
  Alcotest.(check int) "dispatch m=2" 2 (Crs_algorithms.Solver.optimal_makespan inst);
  Alcotest.(check int) "explicit method" 2
    (Crs_algorithms.Solver.optimal_makespan ~method_:Crs_algorithms.Solver.Dfs_bnb inst);
  let sched = Crs_algorithms.Solver.optimal_schedule inst in
  Alcotest.(check int) "witness" 2 (Execution.makespan (Execution.run_exn inst sched));
  Alcotest.check Helpers.check_q "ratio of GB" Q.one
    (Crs_algorithms.Solver.ratio ~algorithm:Crs_algorithms.Greedy_balance.makespan inst)

let prop_certified_ratio_bound =
  Helpers.qcheck_case ~count:40 "certified ratio upper bound is sound"
    (Helpers.gen_instance ~max_m:3 ~max_jobs:3 ()) (fun instance ->
      let certified = Crs_algorithms.Solver.ratio_upper_bound instance in
      let true_ratio =
        Crs_algorithms.Solver.ratio
          ~algorithm:Crs_algorithms.Greedy_balance.makespan instance
      in
      Q.(true_ratio <= certified))

let suite =
  [
    Alcotest.test_case "round-robin: phases and prediction" `Quick test_round_robin_phases;
    Alcotest.test_case "round-robin: zero-requirement phase" `Quick
      test_round_robin_zero_phase;
    Alcotest.test_case "round-robin: Figure 3 family" `Quick test_round_robin_family;
    prop_round_robin_within_2x;
    prop_round_robin_prediction;
    Alcotest.test_case "opt-two: input validation" `Quick test_opt_two_requires_two_procs;
    Alcotest.test_case "opt-two: simple cases" `Quick test_opt_two_simple_cases;
    Alcotest.test_case "opt-two: witness schedules" `Quick test_opt_two_witness_valid;
    prop_exact_solvers_agree_m2;
    prop_lemma3_sufficiency;
    prop_exact_solvers_agree_m3;
    prop_exact_solvers_agree_m4;
    prop_opt_config_prune_invariant;
    prop_lemma4_audit;
    Alcotest.test_case "lemma 4 audit: strong form on a tie-heavy instance" `Quick
      test_lemma4_audit_strong_form;
    Alcotest.test_case "lemma 4 audit: nestedness is essential (E4)" `Quick
      test_lemma4_needs_nestedness;
    Alcotest.test_case "opt-config: witness schedules" `Quick test_opt_config_witness_valid;
    Alcotest.test_case "lower bounds below optimum" `Quick test_exact_lower_bounds;
    Alcotest.test_case "greedy-balance: Theorem 8 family" `Quick test_greedy_balance_family;
    Alcotest.test_case "greedy-balance: Figure 5 exact values" `Quick test_figure5_values;
    prop_theorem7_ratio;
    Alcotest.test_case "greedy-balance: family ratio trend" `Quick
      test_family_ratio_approaches_bound;
    prop_theorem7_proof_bounds;
    Alcotest.test_case "heuristics never beat the optimum" `Quick
      test_heuristics_never_below_opt;
    Alcotest.test_case "certified bounds on the families" `Quick
      test_certified_bound_on_families;
    Alcotest.test_case "solver facade" `Quick test_solver_facade;
    prop_certified_ratio_bound;
  ]
