(* Tests for the bignum substrate: Natural, Bigint, Rational.
   Strategy: unit tests on hand-picked values and boundaries, plus qcheck
   properties cross-validating against native int arithmetic (exact for
   small operands) and checking algebraic laws for large ones. *)

module N = Crs_num.Natural
module Z = Crs_num.Bigint
module Q = Crs_num.Rational

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* ---------- Natural ---------- *)

let test_natural_roundtrip () =
  List.iter
    (fun n -> check_int "of_int/to_int" n (N.to_int_exn (N.of_int n)))
    [ 0; 1; 2; 1073741823; 1073741824; max_int ]

let test_natural_strings () =
  check_str "zero" "0" (N.to_string N.zero);
  check_str "small" "12345" (N.to_string (N.of_int 12345));
  let big = "123456789012345678901234567890123456789" in
  check_str "big roundtrip" big (N.to_string (N.of_string big));
  check_str "leading zeros parse" "42" (N.to_string (N.of_string "0042"));
  Alcotest.check_raises "empty string" (Invalid_argument "Natural.of_string: empty string")
    (fun () -> ignore (N.of_string ""))

let test_natural_add_sub () =
  let a = N.of_string "99999999999999999999999999" in
  let b = N.of_int 1 in
  check_str "carry chain" "100000000000000000000000000" (N.to_string (N.add a b));
  check_str "sub undoes add" (N.to_string a) (N.to_string (N.sub (N.add a b) b));
  Alcotest.check_raises "negative sub"
    (Invalid_argument "Natural.sub: would be negative") (fun () ->
      ignore (N.sub b a))

let test_natural_mul_div () =
  let a = N.of_string "123456789123456789" in
  let b = N.of_string "987654321987654321" in
  let p = N.mul a b in
  let qt, r = N.divmod p a in
  check_bool "divmod exact" true (N.equal qt b && N.is_zero r);
  let qt2, r2 = N.divmod (N.add p (N.of_int 17)) a in
  check_bool "divmod remainder" true (N.equal qt2 b && N.equal r2 (N.of_int 17));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (N.divmod a N.zero))

let test_natural_gcd_lcm () =
  check_int "gcd(12,18)" 6 (N.to_int_exn (N.gcd (N.of_int 12) (N.of_int 18)));
  check_int "gcd(0,n)" 7 (N.to_int_exn (N.gcd N.zero (N.of_int 7)));
  check_int "lcm(4,6)" 12 (N.to_int_exn (N.lcm (N.of_int 4) (N.of_int 6)));
  check_bool "lcm with zero" true (N.is_zero (N.lcm N.zero (N.of_int 9)))

let test_natural_pow_shift () =
  check_str "2^100" "1267650600228229401496703205376"
    (N.to_string (N.pow N.two 100));
  check_int "pow zero exponent" 1 (N.to_int_exn (N.pow (N.of_int 9) 0));
  let n = N.of_string "123456789123456789" in
  check_bool "shift roundtrip" true
    (N.equal n (N.shift_right (N.shift_left n 37) 37));
  check_bool "shift_right drops" true
    (N.equal (N.of_int 1) (N.shift_right (N.of_int 3) 1))

let test_natural_canonical () =
  check_bool "canonical zero" true (N.is_canonical N.zero);
  check_bool "canonical after sub to zero" true
    (N.is_canonical (N.sub (N.of_int 5) (N.of_int 5)));
  check_int "limbs of zero" 0 (N.num_limbs N.zero)

let test_natural_gcd_int () =
  check_int "gcd_int(12,18)" 6 (N.gcd_int 12 18);
  check_int "gcd_int(0,n)" 7 (N.gcd_int 0 7);
  check_int "gcd_int(n,0)" 7 (N.gcd_int 7 0);
  check_int "coprime" 1 (N.gcd_int 17 1024);
  check_int "shared powers of two" 8 (N.gcd_int 8 24);
  check_int "equal args" max_int (N.gcd_int max_int max_int);
  Alcotest.check_raises "negative" (Invalid_argument "Natural.gcd_int: negative")
    (fun () -> ignore (N.gcd_int (-1) 2))

let test_natural_int_boundaries () =
  (* Limb boundaries of the of_int/to_int_opt fast paths: one, two and
     three limbs, including the top-limb capacity edge at 2^60. *)
  List.iter
    (fun n ->
      check_int "roundtrip" n (N.to_int_exn (N.of_int n));
      check_str "same digits" (string_of_int n) (N.to_string (N.of_int n));
      check_bool "canonical" true (N.is_canonical (N.of_int n)))
    [ 0; 1; (1 lsl 30) - 1; 1 lsl 30; (1 lsl 60) - 1; 1 lsl 60; max_int ];
  check_bool "beyond int range" true
    (N.to_int_opt (N.add (N.of_int max_int) N.one) = None)

let test_natural_compare_int () =
  List.iter
    (fun (n, m) ->
      check_int
        (Printf.sprintf "compare_int %s %d" (N.to_string n) m)
        (N.compare n (N.of_int m))
        (N.compare_int n m))
    [
      (N.zero, 0); (N.zero, 5); (N.of_int 5, 5); (N.of_int 6, 5);
      (N.of_int 5, 6);
      (N.of_int max_int, max_int); (N.of_int max_int, max_int - 1);
      (N.of_int ((1 lsl 60) - 1), 1 lsl 60);
      (N.of_int (1 lsl 60), (1 lsl 60) - 1);
    ];
  check_int "beyond int range is greater" 1
    (N.compare_int (N.add (N.of_int max_int) N.one) max_int);
  Alcotest.check_raises "negative"
    (Invalid_argument "Natural.compare_int: negative") (fun () ->
      ignore (N.compare_int N.zero (-1)))

let nat_pair = QCheck2.Gen.(pair (int_bound 1_000_000) (int_bound 1_000_000))

let prop_natural_gcd_int_matches =
  Helpers.qcheck_case "binary gcd_int matches limb-array gcd" nat_pair
    (fun (a, b) -> N.gcd_int a b = N.to_int_exn (N.gcd (N.of_int a) (N.of_int b)))

let prop_natural_matches_int =
  Helpers.qcheck_case "Natural add/mul/divmod match int" nat_pair (fun (a, b) ->
      let na = N.of_int a and nb = N.of_int b in
      N.to_int_exn (N.add na nb) = a + b
      && N.to_int_exn (N.mul na nb) = a * b
      && (b = 0
         || N.to_int_exn (N.div na nb) = a / b
            && N.to_int_exn (N.rem na nb) = a mod b)
      && N.compare na nb = compare a b)

let prop_natural_mul_assoc =
  Helpers.qcheck_case "Natural big multiplication associativity"
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b, c) ->
      (* Force multi-limb values by scaling up. *)
      let big x = N.pow (N.of_int (x + 2)) 7 in
      let x = big a and y = big b and z = big c in
      N.equal (N.mul (N.mul x y) z) (N.mul x (N.mul y z)))

let prop_natural_divmod_big =
  Helpers.qcheck_case ~count:200 "Knuth-D divmod identity on multi-limb values"
    QCheck2.Gen.(
      triple (int_range 2 1_000_000) (int_range 2 1_000_000) (int_range 1 9))
    (fun (a, b, e) ->
      (* Build dividends/divisors spanning several limbs with varied
         top-limb patterns (the q_hat estimation's hard cases). *)
      let x = N.add (N.pow (N.of_int a) (e + 3)) (N.of_int b) in
      let y = N.add (N.pow (N.of_int b) e) (N.of_int a) in
      let q, r = N.divmod x y in
      N.equal x (N.add (N.mul q y) r) && N.compare r y < 0 && N.is_canonical r
      && N.is_canonical q)

let prop_natural_divmod_adversarial =
  Helpers.qcheck_case ~count:200 "divmod near-boundary cases (add-back path)"
    QCheck2.Gen.(pair (int_range 1 6) (int_range 0 3))
    (fun (limbs, delta) ->
      (* x = y * k - delta for full-limb y: exercises the q_hat
         overestimate / add-back branch. *)
      let y = N.sub (N.shift_left N.one (30 * limbs)) N.one in
      let k = N.of_int 977 in
      let x0 = N.mul y k in
      let x = if delta = 0 then x0 else N.sub x0 (N.of_int delta) in
      let q, r = N.divmod x y in
      N.equal x (N.add (N.mul q y) r) && N.compare r y < 0)

let prop_natural_string_roundtrip =
  Helpers.qcheck_case "Natural decimal roundtrip"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun a ->
      let n = N.pow (N.of_int (a + 2)) 9 in
      N.equal n (N.of_string (N.to_string n)))

(* ---------- Bigint ---------- *)

let test_bigint_signs () =
  check_int "neg" (-5) (Z.to_int_exn (Z.neg (Z.of_int 5)));
  check_int "abs" 5 (Z.to_int_exn (Z.abs (Z.of_int (-5))));
  check_int "sign pos" 1 (Z.sign (Z.of_int 3));
  check_int "sign neg" (-1) (Z.sign (Z.of_int (-3)));
  check_int "sign zero" 0 (Z.sign Z.zero);
  check_int "min_int roundtrip" min_int (Z.to_int_exn (Z.of_int min_int))

let test_bigint_euclidean () =
  (* Euclidean division: remainder in [0, |b|). *)
  List.iter
    (fun (a, b) ->
      let qt, r = Z.divmod (Z.of_int a) (Z.of_int b) in
      let qt = Z.to_int_exn qt and r = Z.to_int_exn r in
      check_bool
        (Printf.sprintf "divmod %d %d" a b)
        true
        (r >= 0 && r < abs b && (qt * b) + r = a))
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (6, 3); (-6, 3); (0, 5) ]

let test_bigint_strings () =
  check_str "negative" "-12345678901234567890123"
    (Z.to_string (Z.of_string "-12345678901234567890123"));
  check_str "plus sign" "17" (Z.to_string (Z.of_string "+17"))

let test_bigint_pow () =
  check_int "(-2)^3" (-8) (Z.to_int_exn (Z.pow (Z.of_int (-2)) 3));
  check_int "(-2)^4" 16 (Z.to_int_exn (Z.pow (Z.of_int (-2)) 4));
  check_int "0^0" 1 (Z.to_int_exn (Z.pow Z.zero 0))

let test_bigint_compare_int () =
  let big = Z.of_string "123456789012345678901234567890" in
  check_int "pos big vs int" 1 (Z.compare_int big 42);
  check_int "neg big vs pos int" (-1) (Z.compare_int (Z.neg big) 42);
  check_int "neg big vs neg int" (-1) (Z.compare_int (Z.neg big) (-42));
  check_int "equal negative" 0 (Z.compare_int (Z.of_int (-7)) (-7));
  check_int "zero" 0 (Z.compare_int Z.zero 0);
  check_int "vs max_int" (-1) (Z.compare_int (Z.of_int (max_int - 1)) max_int);
  check_int "min_int equal" 0 (Z.compare_int (Z.of_int min_int) min_int);
  check_int "below min_int" (-1)
    (Z.compare_int (Z.sub (Z.of_int min_int) Z.one) min_int);
  check_int "above min_int" 1 (Z.compare_int (Z.of_int (min_int + 1)) min_int)

let int_pair = QCheck2.Gen.(pair (int_range (-1_000_000) 1_000_000) (int_range (-1_000_000) 1_000_000))

let prop_bigint_ring =
  Helpers.qcheck_case "Bigint add/sub/mul match int" int_pair (fun (a, b) ->
      let za = Z.of_int a and zb = Z.of_int b in
      Z.to_int_exn (Z.add za zb) = a + b
      && Z.to_int_exn (Z.sub za zb) = a - b
      && Z.to_int_exn (Z.mul za zb) = a * b
      && Z.compare za zb = compare a b)

let prop_bigint_compare_int =
  Helpers.qcheck_case "Bigint.compare_int matches compare" int_pair
    (fun (a, b) -> Z.compare_int (Z.of_int a) b = compare a b)

(* ---------- Rational ---------- *)

let test_rational_normalization () =
  check_str "reduces" "1/3" (Q.to_string (Q.of_ints 7 21));
  check_str "sign in num" "-1/3" (Q.to_string (Q.of_ints 7 (-21)));
  check_str "integer" "4" (Q.to_string (Q.of_ints 8 2));
  check_str "zero canonical" "0" (Q.to_string (Q.of_ints 0 17));
  Alcotest.check_raises "zero denominator" Division_by_zero (fun () ->
      ignore (Q.of_ints 1 0))

let test_rational_parse () =
  check_str "fraction" "5/4" (Q.to_string (Helpers.q "5/4"));
  check_str "decimal" "-5/4" (Q.to_string (Helpers.q "-1.25"));
  check_str "decimal frac only" "1/2" (Q.to_string (Helpers.q "0.5"));
  check_str "integer string" "42" (Q.to_string (Helpers.q "42"))

let test_rational_rounding () =
  check_int "floor 7/2" 3 (Q.floor_int (Q.of_ints 7 2));
  check_int "floor -7/2" (-4) (Q.floor_int (Q.of_ints (-7) 2));
  check_int "ceil 7/2" 4 (Q.ceil_int (Q.of_ints 7 2));
  check_int "ceil -7/2" (-3) (Q.ceil_int (Q.of_ints (-7) 2));
  check_int "floor integer" 5 (Q.floor_int (Q.of_int 5));
  check_int "ceil integer" 5 (Q.ceil_int (Q.of_int 5))

let test_rational_compare () =
  check_bool "1/3 < 1/2" true Q.(Q.of_ints 1 3 < Q.of_ints 1 2);
  check_bool "-1/2 < 1/3" true Q.(Q.of_ints (-1) 2 < Q.of_ints 1 3);
  check_bool "in unit interval" true (Q.in_unit_interval Q.one);
  check_bool "outside unit interval" false (Q.in_unit_interval (Q.of_ints 3 2));
  Alcotest.check Helpers.check_q "clamp" Q.one
    (Q.clamp ~lo:Q.zero ~hi:Q.one (Q.of_ints 3 2))

let test_rational_to_float () =
  Alcotest.(check (float 1e-9)) "3/4" 0.75 (Q.to_float (Q.of_ints 3 4));
  Alcotest.(check (float 1e-6)) "big ratio" 0.5
    (Q.to_float (Q.make (Z.of_string "500000000000000000000") (Z.of_string "1000000000000000000000")));
  (* Both parts beyond float range: num and den individually overflow to
     inf, so the old string fallback produced inf /. inf = nan. *)
  let pow10 e = Z.pow (Z.of_int 10) e in
  let huge = Q.make (pow10 400) (Z.mul (Z.of_int 3) (pow10 390)) in
  Alcotest.(check (float 1e4)) "10^400 / 3*10^390" 3.3333333e9 (Q.to_float huge);
  Alcotest.(check (float 1e4)) "negative huge" (-3.3333333e9)
    (Q.to_float (Q.neg huge));
  (* A ratio that genuinely overflows/underflows the float range should
     come out as inf / 0, not nan. *)
  Alcotest.(check bool) "overflow is inf" true
    (Q.to_float (Q.make (pow10 400) (Z.of_int 1)) = Float.infinity);
  Alcotest.(check (float 0.0)) "underflow is 0" 0.0
    (Q.to_float (Q.make (Z.of_int 1) (pow10 400)))

let rat_gen =
  QCheck2.Gen.(
    map
      (fun (a, b, c, d) -> (Q.of_ints a (b + 1), Q.of_ints c (d + 1)))
      (quad (int_range (-1000) 1000) (int_bound 1000) (int_range (-1000) 1000)
         (int_bound 1000)))

let prop_rational_field =
  Helpers.qcheck_case "Rational field laws" rat_gen (fun (x, y) ->
      Q.equal (Q.add x y) (Q.add y x)
      && Q.equal (Q.mul x y) (Q.mul y x)
      && Q.equal (Q.sub (Q.add x y) y) x
      && (Q.is_zero y || Q.equal (Q.div (Q.mul x y) y) x)
      && Q.equal (Q.neg (Q.neg x)) x)

let prop_rational_ordering =
  Helpers.qcheck_case "Rational order is total and consistent" rat_gen
    (fun (x, y) ->
      let c = Q.compare x y in
      (c = 0) = Q.equal x y
      && (c <= 0) = Q.(x <= y)
      && Q.equal (Q.min x y) (if c <= 0 then x else y)
      && Q.(Q.min x y <= Q.max x y))

let prop_rational_floor_ceil =
  Helpers.qcheck_case "floor <= x <= ceil, gap < 1" rat_gen (fun (x, _) ->
      let f = Q.of_bigint (Q.floor x) and c = Q.of_bigint (Q.ceil x) in
      Q.(f <= x) && Q.(x <= c) && Q.(Q.sub c f <= Q.one))

(* ---------- two-tier representation ---------- *)

let test_rational_tiers () =
  check_bool "paper fractions are small" true (Q.is_small (Q.of_ints 7 12));
  check_bool "constants are small" true
    (List.for_all Q.is_small [ Q.zero; Q.one; Q.two; Q.half; Q.minus_one ]);
  let big = Q.make (Z.of_string "123456789012345678901") Z.one in
  check_bool "oversized integer spills" false (Q.is_small big);
  check_bool "spilled value canonical" true (Q.is_canonical big);
  (* Spill through arithmetic, then renormalize back into the small
     tier: operations must demote whenever the reduced result fits. *)
  let sq = Q.mul (Q.of_int max_int) (Q.of_int max_int) in
  check_bool "max_int^2 spills" false (Q.is_small sq);
  let back = Q.div sq sq in
  check_bool "quotient renormalizes to small" true (Q.is_small back);
  check_bool "quotient is one" true (Q.is_one back);
  (* Demotion boundary: exactly small_bound stays small, one above
     spills, and subtracting brings it back. *)
  let at = Q.of_int Q.small_bound and beyond = Q.of_int (Q.small_bound + 1) in
  check_bool "at bound is small" true (Q.is_small at);
  check_bool "beyond bound spills" false (Q.is_small beyond);
  check_bool "beyond bound canonical" true (Q.is_canonical beyond);
  check_bool "difference renormalizes" true
    (Q.is_small (Q.sub beyond Q.one) && Q.equal (Q.sub beyond Q.one) at);
  (* inv never changes tier *)
  check_bool "inv of small is small" true (Q.is_small (Q.inv (Q.of_ints 3 7)));
  check_bool "inv of big stays big" false (Q.is_small (Q.inv big))

let test_rational_min_int_edges () =
  (* min_int cannot be negated in int arithmetic; these must route
     through the bigint path and still come out canonical. *)
  check_str "min_int/1" (string_of_int min_int)
    (Q.to_string (Q.of_ints min_int 1));
  check_str "min_int/min_int" "1" (Q.to_string (Q.of_ints min_int min_int));
  check_str "1/min_int" "-1/4611686018427387904"
    (Q.to_string (Q.of_ints 1 min_int));
  check_str "min_int/2" "-2305843009213693952"
    (Q.to_string (Q.of_ints min_int 2));
  List.iter
    (fun q -> check_bool "canonical" true (Q.is_canonical q))
    [
      Q.of_ints min_int 1; Q.of_ints min_int min_int; Q.of_ints 1 min_int;
      Q.of_ints min_int 3; Q.of_ints max_int min_int;
    ];
  (* A small-tier add whose cross-product sum lands exactly on min_int:
     -(2^31-1)^2 - (2^32-1) = -2^62, using 2^32-1 = (2^16-1)(2^16+1).
     min_int fits the int, but the small tier cannot take its absolute
     value, so normalization must detour through the bigint path. *)
  let x = Q.of_ints (-((1 lsl 31) - 1)) ((1 lsl 16) - 1)
  and y = Q.of_ints (-((1 lsl 16) + 1)) ((1 lsl 31) - 1) in
  let s = Q.add x y in
  check_bool "min_int-sum canonical" true (Q.is_canonical s);
  check_str "min_int-sum" "-4611686018427387904/140735340806145"
    (Q.to_string s)

let test_rational_parse_robustness () =
  (* negative and signed decimals *)
  check_str "neg decimal" "-5/4" (Q.to_string (Q.of_string "-1.25"));
  check_str "neg decimal, no int digits" "-1/2" (Q.to_string (Q.of_string "-.5"));
  check_str "plus decimal" "1/2" (Q.to_string (Q.of_string "+0.5"));
  (* whitespace-padded forms *)
  check_str "padded fraction" "-7/9" (Q.to_string (Q.of_string " -7 / 9 "));
  check_str "padded integer" "42" (Q.to_string (Q.of_string "  42  "));
  check_str "padded decimal" "-5/4" (Q.to_string (Q.of_string " -1.25 "));
  (* bare signs and empty input raise cleanly *)
  List.iter
    (fun s ->
      Alcotest.check_raises
        (Printf.sprintf "rejects %S" s)
        (Invalid_argument "Rational.of_string: empty or bare sign")
        (fun () -> ignore (Q.of_string s)))
    [ ""; "+"; "-"; "   " ]

let test_rational_string_roundtrip_spill () =
  (* to_string/of_string round trips across the spill boundary: values
     whose parts sit at or just past the small tier and the int range. *)
  let cases =
    [
      Q.of_ints Q.small_bound 1;
      Q.of_ints (Q.small_bound + 1) 1;
      Q.of_ints (-Q.small_bound - 1) 3;
      Q.of_ints Q.small_bound (Q.small_bound + 1);
      Q.of_ints max_int (max_int - 2);
      Q.of_ints (-max_int) (max_int - 1);
      Q.of_ints min_int 3;
      Q.of_ints 1 max_int;
      Q.of_string "4611686018427387903.5";
      Q.make (Z.of_string "-123456789012345678901234567890")
        (Z.of_string "987654321098765432109876543210");
    ]
  in
  List.iter
    (fun q ->
      let s = Q.to_string q in
      check_bool (Printf.sprintf "roundtrip %s" s) true
        (Q.equal q (Q.of_string s));
      check_bool (Printf.sprintf "canonical %s" s) true (Q.is_canonical q))
    cases

(* The same differential sampler as `bench num --check`: 10k random
   operations compared against a naive pure-bigint reference, biased
   toward the representation's fault lines (small values, the spill
   bound, max_int, multi-limb). *)
let test_rational_differential () =
  let outcome = Crs_num.Check.run ~ops:10_000 ~seed:2024 () in
  check_bool (Crs_num.Check.describe outcome) true (Crs_num.Check.ok outcome)

let suite =
  [
    Alcotest.test_case "natural: int roundtrip" `Quick test_natural_roundtrip;
    Alcotest.test_case "natural: decimal strings" `Quick test_natural_strings;
    Alcotest.test_case "natural: add/sub carries" `Quick test_natural_add_sub;
    Alcotest.test_case "natural: mul/divmod" `Quick test_natural_mul_div;
    Alcotest.test_case "natural: gcd/lcm" `Quick test_natural_gcd_lcm;
    Alcotest.test_case "natural: pow/shift" `Quick test_natural_pow_shift;
    Alcotest.test_case "natural: canonical form" `Quick test_natural_canonical;
    Alcotest.test_case "natural: gcd_int" `Quick test_natural_gcd_int;
    Alcotest.test_case "natural: int fast-path boundaries" `Quick
      test_natural_int_boundaries;
    Alcotest.test_case "natural: compare_int" `Quick test_natural_compare_int;
    prop_natural_gcd_int_matches;
    prop_natural_matches_int;
    prop_natural_mul_assoc;
    prop_natural_divmod_big;
    prop_natural_divmod_adversarial;
    prop_natural_string_roundtrip;
    Alcotest.test_case "bigint: signs" `Quick test_bigint_signs;
    Alcotest.test_case "bigint: euclidean division" `Quick test_bigint_euclidean;
    Alcotest.test_case "bigint: strings" `Quick test_bigint_strings;
    Alcotest.test_case "bigint: pow" `Quick test_bigint_pow;
    Alcotest.test_case "bigint: compare_int" `Quick test_bigint_compare_int;
    prop_bigint_ring;
    prop_bigint_compare_int;
    Alcotest.test_case "rational: normalization" `Quick test_rational_normalization;
    Alcotest.test_case "rational: parsing" `Quick test_rational_parse;
    Alcotest.test_case "rational: rounding" `Quick test_rational_rounding;
    Alcotest.test_case "rational: comparisons" `Quick test_rational_compare;
    Alcotest.test_case "rational: to_float" `Quick test_rational_to_float;
    Alcotest.test_case "rational: two-tier representation" `Quick
      test_rational_tiers;
    Alcotest.test_case "rational: min_int edges" `Quick
      test_rational_min_int_edges;
    Alcotest.test_case "rational: parse robustness" `Quick
      test_rational_parse_robustness;
    Alcotest.test_case "rational: spill-boundary string roundtrip" `Quick
      test_rational_string_roundtrip_spill;
    Alcotest.test_case "rational: differential vs bigint reference" `Quick
      test_rational_differential;
    prop_rational_field;
    prop_rational_ordering;
    prop_rational_floor_ceil;
  ]
