(* Tests for the bignum substrate: Natural, Bigint, Rational.
   Strategy: unit tests on hand-picked values and boundaries, plus qcheck
   properties cross-validating against native int arithmetic (exact for
   small operands) and checking algebraic laws for large ones. *)

module N = Crs_num.Natural
module Z = Crs_num.Bigint
module Q = Crs_num.Rational

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* ---------- Natural ---------- *)

let test_natural_roundtrip () =
  List.iter
    (fun n -> check_int "of_int/to_int" n (N.to_int_exn (N.of_int n)))
    [ 0; 1; 2; 1073741823; 1073741824; max_int ]

let test_natural_strings () =
  check_str "zero" "0" (N.to_string N.zero);
  check_str "small" "12345" (N.to_string (N.of_int 12345));
  let big = "123456789012345678901234567890123456789" in
  check_str "big roundtrip" big (N.to_string (N.of_string big));
  check_str "leading zeros parse" "42" (N.to_string (N.of_string "0042"));
  Alcotest.check_raises "empty string" (Invalid_argument "Natural.of_string: empty string")
    (fun () -> ignore (N.of_string ""))

let test_natural_add_sub () =
  let a = N.of_string "99999999999999999999999999" in
  let b = N.of_int 1 in
  check_str "carry chain" "100000000000000000000000000" (N.to_string (N.add a b));
  check_str "sub undoes add" (N.to_string a) (N.to_string (N.sub (N.add a b) b));
  Alcotest.check_raises "negative sub"
    (Invalid_argument "Natural.sub: would be negative") (fun () ->
      ignore (N.sub b a))

let test_natural_mul_div () =
  let a = N.of_string "123456789123456789" in
  let b = N.of_string "987654321987654321" in
  let p = N.mul a b in
  let qt, r = N.divmod p a in
  check_bool "divmod exact" true (N.equal qt b && N.is_zero r);
  let qt2, r2 = N.divmod (N.add p (N.of_int 17)) a in
  check_bool "divmod remainder" true (N.equal qt2 b && N.equal r2 (N.of_int 17));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (N.divmod a N.zero))

let test_natural_gcd_lcm () =
  check_int "gcd(12,18)" 6 (N.to_int_exn (N.gcd (N.of_int 12) (N.of_int 18)));
  check_int "gcd(0,n)" 7 (N.to_int_exn (N.gcd N.zero (N.of_int 7)));
  check_int "lcm(4,6)" 12 (N.to_int_exn (N.lcm (N.of_int 4) (N.of_int 6)));
  check_bool "lcm with zero" true (N.is_zero (N.lcm N.zero (N.of_int 9)))

let test_natural_pow_shift () =
  check_str "2^100" "1267650600228229401496703205376"
    (N.to_string (N.pow N.two 100));
  check_int "pow zero exponent" 1 (N.to_int_exn (N.pow (N.of_int 9) 0));
  let n = N.of_string "123456789123456789" in
  check_bool "shift roundtrip" true
    (N.equal n (N.shift_right (N.shift_left n 37) 37));
  check_bool "shift_right drops" true
    (N.equal (N.of_int 1) (N.shift_right (N.of_int 3) 1))

let test_natural_canonical () =
  check_bool "canonical zero" true (N.is_canonical N.zero);
  check_bool "canonical after sub to zero" true
    (N.is_canonical (N.sub (N.of_int 5) (N.of_int 5)));
  check_int "limbs of zero" 0 (N.num_limbs N.zero)

let nat_pair = QCheck2.Gen.(pair (int_bound 1_000_000) (int_bound 1_000_000))

let prop_natural_matches_int =
  Helpers.qcheck_case "Natural add/mul/divmod match int" nat_pair (fun (a, b) ->
      let na = N.of_int a and nb = N.of_int b in
      N.to_int_exn (N.add na nb) = a + b
      && N.to_int_exn (N.mul na nb) = a * b
      && (b = 0
         || N.to_int_exn (N.div na nb) = a / b
            && N.to_int_exn (N.rem na nb) = a mod b)
      && N.compare na nb = compare a b)

let prop_natural_mul_assoc =
  Helpers.qcheck_case "Natural big multiplication associativity"
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b, c) ->
      (* Force multi-limb values by scaling up. *)
      let big x = N.pow (N.of_int (x + 2)) 7 in
      let x = big a and y = big b and z = big c in
      N.equal (N.mul (N.mul x y) z) (N.mul x (N.mul y z)))

let prop_natural_divmod_big =
  Helpers.qcheck_case ~count:200 "Knuth-D divmod identity on multi-limb values"
    QCheck2.Gen.(
      triple (int_range 2 1_000_000) (int_range 2 1_000_000) (int_range 1 9))
    (fun (a, b, e) ->
      (* Build dividends/divisors spanning several limbs with varied
         top-limb patterns (the q_hat estimation's hard cases). *)
      let x = N.add (N.pow (N.of_int a) (e + 3)) (N.of_int b) in
      let y = N.add (N.pow (N.of_int b) e) (N.of_int a) in
      let q, r = N.divmod x y in
      N.equal x (N.add (N.mul q y) r) && N.compare r y < 0 && N.is_canonical r
      && N.is_canonical q)

let prop_natural_divmod_adversarial =
  Helpers.qcheck_case ~count:200 "divmod near-boundary cases (add-back path)"
    QCheck2.Gen.(pair (int_range 1 6) (int_range 0 3))
    (fun (limbs, delta) ->
      (* x = y * k - delta for full-limb y: exercises the q_hat
         overestimate / add-back branch. *)
      let y = N.sub (N.shift_left N.one (30 * limbs)) N.one in
      let k = N.of_int 977 in
      let x0 = N.mul y k in
      let x = if delta = 0 then x0 else N.sub x0 (N.of_int delta) in
      let q, r = N.divmod x y in
      N.equal x (N.add (N.mul q y) r) && N.compare r y < 0)

let prop_natural_string_roundtrip =
  Helpers.qcheck_case "Natural decimal roundtrip"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun a ->
      let n = N.pow (N.of_int (a + 2)) 9 in
      N.equal n (N.of_string (N.to_string n)))

(* ---------- Bigint ---------- *)

let test_bigint_signs () =
  check_int "neg" (-5) (Z.to_int_exn (Z.neg (Z.of_int 5)));
  check_int "abs" 5 (Z.to_int_exn (Z.abs (Z.of_int (-5))));
  check_int "sign pos" 1 (Z.sign (Z.of_int 3));
  check_int "sign neg" (-1) (Z.sign (Z.of_int (-3)));
  check_int "sign zero" 0 (Z.sign Z.zero);
  check_int "min_int roundtrip" min_int (Z.to_int_exn (Z.of_int min_int))

let test_bigint_euclidean () =
  (* Euclidean division: remainder in [0, |b|). *)
  List.iter
    (fun (a, b) ->
      let qt, r = Z.divmod (Z.of_int a) (Z.of_int b) in
      let qt = Z.to_int_exn qt and r = Z.to_int_exn r in
      check_bool
        (Printf.sprintf "divmod %d %d" a b)
        true
        (r >= 0 && r < abs b && (qt * b) + r = a))
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (6, 3); (-6, 3); (0, 5) ]

let test_bigint_strings () =
  check_str "negative" "-12345678901234567890123"
    (Z.to_string (Z.of_string "-12345678901234567890123"));
  check_str "plus sign" "17" (Z.to_string (Z.of_string "+17"))

let test_bigint_pow () =
  check_int "(-2)^3" (-8) (Z.to_int_exn (Z.pow (Z.of_int (-2)) 3));
  check_int "(-2)^4" 16 (Z.to_int_exn (Z.pow (Z.of_int (-2)) 4));
  check_int "0^0" 1 (Z.to_int_exn (Z.pow Z.zero 0))

let int_pair = QCheck2.Gen.(pair (int_range (-1_000_000) 1_000_000) (int_range (-1_000_000) 1_000_000))

let prop_bigint_ring =
  Helpers.qcheck_case "Bigint add/sub/mul match int" int_pair (fun (a, b) ->
      let za = Z.of_int a and zb = Z.of_int b in
      Z.to_int_exn (Z.add za zb) = a + b
      && Z.to_int_exn (Z.sub za zb) = a - b
      && Z.to_int_exn (Z.mul za zb) = a * b
      && Z.compare za zb = compare a b)

(* ---------- Rational ---------- *)

let test_rational_normalization () =
  check_str "reduces" "1/3" (Q.to_string (Q.of_ints 7 21));
  check_str "sign in num" "-1/3" (Q.to_string (Q.of_ints 7 (-21)));
  check_str "integer" "4" (Q.to_string (Q.of_ints 8 2));
  check_str "zero canonical" "0" (Q.to_string (Q.of_ints 0 17));
  Alcotest.check_raises "zero denominator" Division_by_zero (fun () ->
      ignore (Q.of_ints 1 0))

let test_rational_parse () =
  check_str "fraction" "5/4" (Q.to_string (Helpers.q "5/4"));
  check_str "decimal" "-5/4" (Q.to_string (Helpers.q "-1.25"));
  check_str "decimal frac only" "1/2" (Q.to_string (Helpers.q "0.5"));
  check_str "integer string" "42" (Q.to_string (Helpers.q "42"))

let test_rational_rounding () =
  check_int "floor 7/2" 3 (Q.floor_int (Q.of_ints 7 2));
  check_int "floor -7/2" (-4) (Q.floor_int (Q.of_ints (-7) 2));
  check_int "ceil 7/2" 4 (Q.ceil_int (Q.of_ints 7 2));
  check_int "ceil -7/2" (-3) (Q.ceil_int (Q.of_ints (-7) 2));
  check_int "floor integer" 5 (Q.floor_int (Q.of_int 5));
  check_int "ceil integer" 5 (Q.ceil_int (Q.of_int 5))

let test_rational_compare () =
  check_bool "1/3 < 1/2" true Q.(Q.of_ints 1 3 < Q.of_ints 1 2);
  check_bool "-1/2 < 1/3" true Q.(Q.of_ints (-1) 2 < Q.of_ints 1 3);
  check_bool "in unit interval" true (Q.in_unit_interval Q.one);
  check_bool "outside unit interval" false (Q.in_unit_interval (Q.of_ints 3 2));
  Alcotest.check Helpers.check_q "clamp" Q.one
    (Q.clamp ~lo:Q.zero ~hi:Q.one (Q.of_ints 3 2))

let test_rational_to_float () =
  Alcotest.(check (float 1e-9)) "3/4" 0.75 (Q.to_float (Q.of_ints 3 4));
  Alcotest.(check (float 1e-6)) "big ratio" 0.5
    (Q.to_float (Q.make (Z.of_string "500000000000000000000") (Z.of_string "1000000000000000000000")));
  (* Both parts beyond float range: num and den individually overflow to
     inf, so the old string fallback produced inf /. inf = nan. *)
  let pow10 e = Z.pow (Z.of_int 10) e in
  let huge = Q.make (pow10 400) (Z.mul (Z.of_int 3) (pow10 390)) in
  Alcotest.(check (float 1e4)) "10^400 / 3*10^390" 3.3333333e9 (Q.to_float huge);
  Alcotest.(check (float 1e4)) "negative huge" (-3.3333333e9)
    (Q.to_float (Q.neg huge));
  (* A ratio that genuinely overflows/underflows the float range should
     come out as inf / 0, not nan. *)
  Alcotest.(check bool) "overflow is inf" true
    (Q.to_float (Q.make (pow10 400) (Z.of_int 1)) = Float.infinity);
  Alcotest.(check (float 0.0)) "underflow is 0" 0.0
    (Q.to_float (Q.make (Z.of_int 1) (pow10 400)))

let rat_gen =
  QCheck2.Gen.(
    map
      (fun (a, b, c, d) -> (Q.of_ints a (b + 1), Q.of_ints c (d + 1)))
      (quad (int_range (-1000) 1000) (int_bound 1000) (int_range (-1000) 1000)
         (int_bound 1000)))

let prop_rational_field =
  Helpers.qcheck_case "Rational field laws" rat_gen (fun (x, y) ->
      Q.equal (Q.add x y) (Q.add y x)
      && Q.equal (Q.mul x y) (Q.mul y x)
      && Q.equal (Q.sub (Q.add x y) y) x
      && (Q.is_zero y || Q.equal (Q.div (Q.mul x y) y) x)
      && Q.equal (Q.neg (Q.neg x)) x)

let prop_rational_ordering =
  Helpers.qcheck_case "Rational order is total and consistent" rat_gen
    (fun (x, y) ->
      let c = Q.compare x y in
      (c = 0) = Q.equal x y
      && (c <= 0) = Q.(x <= y)
      && Q.equal (Q.min x y) (if c <= 0 then x else y)
      && Q.(Q.min x y <= Q.max x y))

let prop_rational_floor_ceil =
  Helpers.qcheck_case "floor <= x <= ceil, gap < 1" rat_gen (fun (x, _) ->
      let f = Q.of_bigint (Q.floor x) and c = Q.of_bigint (Q.ceil x) in
      Q.(f <= x) && Q.(x <= c) && Q.(Q.sub c f <= Q.one))

let suite =
  [
    Alcotest.test_case "natural: int roundtrip" `Quick test_natural_roundtrip;
    Alcotest.test_case "natural: decimal strings" `Quick test_natural_strings;
    Alcotest.test_case "natural: add/sub carries" `Quick test_natural_add_sub;
    Alcotest.test_case "natural: mul/divmod" `Quick test_natural_mul_div;
    Alcotest.test_case "natural: gcd/lcm" `Quick test_natural_gcd_lcm;
    Alcotest.test_case "natural: pow/shift" `Quick test_natural_pow_shift;
    Alcotest.test_case "natural: canonical form" `Quick test_natural_canonical;
    prop_natural_matches_int;
    prop_natural_mul_assoc;
    prop_natural_divmod_big;
    prop_natural_divmod_adversarial;
    prop_natural_string_roundtrip;
    Alcotest.test_case "bigint: signs" `Quick test_bigint_signs;
    Alcotest.test_case "bigint: euclidean division" `Quick test_bigint_euclidean;
    Alcotest.test_case "bigint: strings" `Quick test_bigint_strings;
    Alcotest.test_case "bigint: pow" `Quick test_bigint_pow;
    prop_bigint_ring;
    Alcotest.test_case "rational: normalization" `Quick test_rational_normalization;
    Alcotest.test_case "rational: parsing" `Quick test_rational_parse;
    Alcotest.test_case "rational: rounding" `Quick test_rational_rounding;
    Alcotest.test_case "rational: comparisons" `Quick test_rational_compare;
    Alcotest.test_case "rational: to_float" `Quick test_rational_to_float;
    prop_rational_field;
    prop_rational_ordering;
    prop_rational_floor_ceil;
  ]
